"""repro.runtime — the batch execution subsystem.

Turns the one-shot fit/simulate pipeline into an orchestrated engine:

* :mod:`repro.runtime.jobs` — declarative job specs with stable
  content-hash identities;
* :mod:`repro.runtime.cache` — a content-addressed on-disk store for
  fitted iBoxNet profiles (fit once, reuse everywhere);
* :mod:`repro.runtime.executor` — a process-pool executor with per-job
  timeout, bounded retry, and graceful degradation;
* :mod:`repro.runtime.manifest` — per-run JSON manifests so performance
  and failures are observable run-over-run;
* :mod:`repro.runtime.batch` — the orchestration entry points the
  ``repro batch`` / ``repro reproduce`` CLI commands sit on.

The library API mirrors the CLI one-to-one.  Simulate counterfactuals
over a directory of traces, in parallel, through the profile cache::

    from pathlib import Path
    from repro.runtime import ExecutorConfig, run_batch

    results, manifest, path = run_batch(
        sorted(Path("data").glob("*.npz")),
        protocols=["vegas", "cubic"],
        cache_dir="cache/",
        manifest_dir="runs/",
        config=ExecutorConfig(workers=4, timeout_sec=120.0),
    )
    failed = [r for r in results if not r.ok]   # structured, never raises

Fit (or re-fit from cache) without simulating — ``models`` is aligned
with the input paths, with ``None`` at failed positions::

    from repro.runtime import fit_profiles

    models, results = fit_profiles(paths, cache_dir="cache/")

Higher layers compose on these primitives rather than re-implementing
pooling: e.g. :func:`repro.core.ensemble.fit_distribution_from_paths`
learns the §3.1 joint parameter distribution straight from trace files
by fanning ``fit_profiles`` across workers and keeping whatever fits.

Every run produces a :class:`RunManifest` whose per-job rows carry
content-derived ``job_id`` values — manifests from different runs join
on ``job_id``, which is how speed or failure regressions are diffed.
"""

from repro.runtime.cache import ProfileCache, default_cache_dir
from repro.runtime.executor import BatchExecutor, ExecutorConfig
from repro.runtime.jobs import (
    JobError,
    JobResult,
    JobSpec,
    make_experiment_job,
    make_fit_job,
    make_simulate_job,
)
from repro.runtime.manifest import MANIFEST_VERSION, RunManifest, new_run_id
from repro.runtime.batch import (
    fit_profiles,
    run_batch,
    run_experiments,
    run_jobs,
)

__all__ = [
    "BatchExecutor",
    "ExecutorConfig",
    "JobError",
    "JobResult",
    "JobSpec",
    "MANIFEST_VERSION",
    "ProfileCache",
    "RunManifest",
    "default_cache_dir",
    "fit_profiles",
    "make_experiment_job",
    "make_fit_job",
    "make_simulate_job",
    "new_run_id",
    "run_batch",
    "run_experiments",
    "run_jobs",
]
