"""repro.runtime — the batch execution subsystem.

Turns the one-shot fit/simulate pipeline into an orchestrated engine:

* :mod:`repro.runtime.jobs` — declarative job specs with stable
  content-hash identities;
* :mod:`repro.runtime.cache` — a content-addressed on-disk store for
  fitted iBoxNet profiles (fit once, reuse everywhere);
* :mod:`repro.runtime.executor` — a process-pool executor with per-job
  timeout, bounded retry, and graceful degradation;
* :mod:`repro.runtime.manifest` — per-run JSON manifests so performance
  and failures are observable run-over-run;
* :mod:`repro.runtime.batch` — the orchestration entry points the
  ``repro batch`` / ``repro reproduce`` CLI commands sit on.
"""

from repro.runtime.cache import ProfileCache, default_cache_dir
from repro.runtime.executor import BatchExecutor, ExecutorConfig
from repro.runtime.jobs import (
    JobError,
    JobResult,
    JobSpec,
    make_experiment_job,
    make_fit_job,
    make_simulate_job,
)
from repro.runtime.manifest import MANIFEST_VERSION, RunManifest, new_run_id
from repro.runtime.batch import (
    fit_profiles,
    run_batch,
    run_experiments,
    run_jobs,
)

__all__ = [
    "BatchExecutor",
    "ExecutorConfig",
    "JobError",
    "JobResult",
    "JobSpec",
    "MANIFEST_VERSION",
    "ProfileCache",
    "RunManifest",
    "default_cache_dir",
    "fit_profiles",
    "make_experiment_job",
    "make_fit_job",
    "make_simulate_job",
    "new_run_id",
    "run_batch",
    "run_experiments",
    "run_jobs",
]
