"""Advisory inter-process file locks.

One primitive, two users: the profile cache serialises fit-on-miss so
two processes racing on the same key fit once (the loser waits, then
reads the winner's entry), and the serve daemon holds a lock on its
state directory so a second daemon cannot interleave journal writes
with a live one.

The implementation prefers ``fcntl.flock`` — released automatically by
the kernel when the holding process dies, even on SIGKILL, which is
exactly the crash-tolerance the serve daemon needs.  Where ``fcntl`` is
unavailable the fallback is an ``O_EXCL`` lockfile with a staleness
bound (a crashed holder's lockfile is broken after ``stale_sec``).
Lockfiles are never unlinked in the flock path: unlink + re-create
races would let two processes hold "the same" lock on different inodes.
"""

from __future__ import annotations

import contextlib
import os
import time
from pathlib import Path
from typing import Iterator, Optional

try:  # POSIX only; the fallback below covers everything else
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None  # type: ignore[assignment]

from repro.trace.io import PathLike


class LockTimeout(TimeoutError):
    """The lock could not be acquired within the caller's timeout."""


#: fds of :class:`ProcessLock` instances held by *this* process, keyed
#: to the acquiring pid.  A forked ``multiprocessing`` child inherits
#: those open descriptors, and a flock follows the open file
#: description — so an orphaned worker would keep its dead parent's
#: state-dir lock held and block fleet handoff.  Forked children call
#: :func:`release_inherited_locks` first thing to hand them back.
_HELD_LOCK_FDS: dict = {}


def release_inherited_locks() -> None:
    """Close lock fds this process inherited from its (fork) parent."""
    pid = os.getpid()
    for fd, owner in list(_HELD_LOCK_FDS.items()):
        if owner != pid:
            try:
                os.close(fd)
            except OSError:  # pragma: no cover - already closed
                pass
            _HELD_LOCK_FDS.pop(fd, None)


def _acquire_flock(fd: int, timeout: Optional[float], poll: float) -> bool:
    """Returns True when the lock was contended (we had to wait)."""
    try:
        fcntl.flock(fd, fcntl.LOCK_EX | fcntl.LOCK_NB)
        return False
    except OSError:
        pass
    if timeout is None:
        fcntl.flock(fd, fcntl.LOCK_EX)
        return True
    deadline = time.monotonic() + timeout
    while True:
        try:
            fcntl.flock(fd, fcntl.LOCK_EX | fcntl.LOCK_NB)
            return True
        except OSError:
            if time.monotonic() >= deadline:
                raise LockTimeout(f"lock not acquired within {timeout}s")
            time.sleep(poll)


def _acquire_excl(
    path: Path, timeout: Optional[float], poll: float, stale_sec: float
) -> bool:
    contended = False
    deadline = None if timeout is None else time.monotonic() + timeout
    while True:
        try:
            fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY, 0o644)
            os.write(fd, str(os.getpid()).encode())
            os.close(fd)
            return contended
        except FileExistsError:
            contended = True
            try:
                age = time.time() - path.stat().st_mtime
                if age > stale_sec:
                    # Holder is presumed dead; break its lock.
                    path.unlink(missing_ok=True)
                    continue
            except OSError:
                continue
            if deadline is not None and time.monotonic() >= deadline:
                raise LockTimeout(f"lock not acquired within {timeout}s")
            time.sleep(poll)


@contextlib.contextmanager
def file_lock(
    path: PathLike,
    timeout: Optional[float] = None,
    poll_interval: float = 0.05,
    stale_sec: float = 60.0,
) -> Iterator[bool]:
    """Hold an exclusive advisory lock at ``path`` for the ``with`` body.

    Yields ``True`` when the lock was *contended* (another process held
    it first and we waited) — callers use that to re-check work another
    process may have finished, e.g. a cache entry the winner wrote.
    Raises :class:`LockTimeout` when ``timeout`` (seconds) elapses.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    if fcntl is not None:
        fd = os.open(path, os.O_RDWR | os.O_CREAT, 0o644)
        try:
            contended = _acquire_flock(fd, timeout, poll_interval)
            yield contended
        finally:
            os.close(fd)  # closing the fd releases the flock
    else:  # pragma: no cover - non-POSIX platforms
        contended = _acquire_excl(path, timeout, poll_interval, stale_sec)
        try:
            yield contended
        finally:
            path.unlink(missing_ok=True)


class ProcessLock:
    """A held-for-process-lifetime lock (the daemon's single-instance pin).

    Unlike :func:`file_lock` this is not a context manager: the serve
    daemon acquires it at startup and simply never releases it — the
    kernel drops the flock when the process exits, *including* on
    SIGKILL, so a crashed daemon never wedges its state directory.
    """

    def __init__(self, path: PathLike):
        self.path = Path(path)
        self._fd: Optional[int] = None

    def acquire(self) -> bool:
        """Try to take the lock; False when another live process holds it."""
        self.path.parent.mkdir(parents=True, exist_ok=True)
        if fcntl is None:  # pragma: no cover - non-POSIX platforms
            try:
                _acquire_excl(self.path, timeout=0.0, poll=0.01, stale_sec=60.0)
            except LockTimeout:
                return False
            return True
        fd = os.open(self.path, os.O_RDWR | os.O_CREAT, 0o644)
        try:
            fcntl.flock(fd, fcntl.LOCK_EX | fcntl.LOCK_NB)
        except OSError:
            os.close(fd)
            return False
        os.ftruncate(fd, 0)
        os.write(fd, str(os.getpid()).encode())
        self._fd = fd
        _HELD_LOCK_FDS[fd] = os.getpid()
        return True

    def release(self) -> None:
        if self._fd is not None:
            _HELD_LOCK_FDS.pop(self._fd, None)
            os.close(self._fd)
            self._fd = None
        elif fcntl is None:  # pragma: no cover
            self.path.unlink(missing_ok=True)
