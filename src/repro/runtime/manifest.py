"""Run manifests: one JSON record per batch, for run-over-run observability.

Every batch run writes ``manifest-<run_id>.json`` capturing what was
asked (job ids + labels), what happened (status, attempts, per-job wall
time, structured errors), and how the cache behaved (hit/miss counts).
Because job ids are content hashes, two manifests are directly joinable
on ``job_id``: a job that got faster, started failing, or flipped from
miss to hit between runs is one dict lookup away.

Schema (``manifest_version`` 1)::

    {
      "manifest_version": 1,
      "run_id": "20260805-142233-1a2b3c",
      "command": "batch",
      "workers": 4,
      "started_at": "2026-08-05T14:22:33+00:00",
      "finished_at": "...",
      "wall_time_sec": 12.3,
      "counts": {"total": 6, "ok": 5, "failed": 1},
      "cache": {"hits": 5, "misses": 1},
      "degraded_to_serial": false,
      "jobs": [ {job_id, kind, label, status, attempts,
                 duration_sec, cache_hit, error}, ... ],
      "metrics": { counters/gauges/histograms snapshot }   // optional
    }

The optional ``metrics`` key is the :mod:`repro.obs` registry snapshot
taken at the end of a telemetry-enabled run (``--metrics-out`` format);
runs with telemetry disabled omit it, keeping the schema backward
compatible within ``manifest_version`` 1.
"""

from __future__ import annotations

import json
import os
import time
import uuid
from dataclasses import dataclass, field
from datetime import datetime, timezone
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from repro.runtime.jobs import JobResult
from repro.trace.io import PathLike

MANIFEST_VERSION = 1


def new_run_id() -> str:
    """Sortable-by-time, collision-safe run identifier."""
    # Microsecond resolution keeps ids from back-to-back runs sortable;
    # the random suffix guards against clock collisions across hosts.
    stamp = datetime.now(timezone.utc).strftime("%Y%m%d-%H%M%S%f")
    return f"{stamp}-{uuid.uuid4().hex[:6]}"


@dataclass
class RunManifest:
    """The persistent record of one batch run."""

    run_id: str
    command: str
    workers: int
    started_at: str
    finished_at: str
    wall_time_sec: float
    jobs: List[dict] = field(default_factory=list)
    degraded_to_serial: bool = False
    #: run_id of the manifest this run resumed from (``batch --resume``).
    resumed_from: Optional[str] = None
    #: Optional repro.obs metrics snapshot (telemetry-enabled runs only).
    metrics: Optional[dict] = None

    # ------------------------------------------------------------------
    # Derived accounting
    # ------------------------------------------------------------------
    @property
    def counts(self) -> Dict[str, int]:
        ok = sum(1 for j in self.jobs if j["status"] == "ok")
        return {"total": len(self.jobs), "ok": ok, "failed": len(self.jobs) - ok}

    @property
    def cache(self) -> Dict[str, int]:
        hits = sum(1 for j in self.jobs if j.get("cache_hit"))
        # Only jobs that *could* have hit (fit-bearing kinds) count as
        # misses; experiment jobs have no profile to cache.
        fit_like = [j for j in self.jobs if j["kind"] in ("fit", "simulate")]
        return {"hits": hits, "misses": len(fit_like) - hits}

    @property
    def failures(self) -> List[dict]:
        return [j for j in self.jobs if j["status"] == "failed"]

    # ------------------------------------------------------------------
    # Construction / persistence
    # ------------------------------------------------------------------
    @classmethod
    def from_results(
        cls,
        results: Sequence[JobResult],
        command: str,
        workers: int,
        started_perf: float,
        started_at_iso: str,
        degraded_to_serial: bool = False,
        run_id: Optional[str] = None,
        resumed_from: Optional[str] = None,
        metrics: Optional[dict] = None,
    ) -> "RunManifest":
        return cls(
            run_id=run_id or new_run_id(),
            command=command,
            workers=workers,
            started_at=started_at_iso,
            finished_at=datetime.now(timezone.utc).isoformat(),
            # Durations always come from perf_counter, never wall clock.
            wall_time_sec=round(time.perf_counter() - started_perf, 6),
            jobs=[r.describe() for r in results],
            degraded_to_serial=degraded_to_serial,
            resumed_from=resumed_from,
            metrics=metrics,
        )

    def to_dict(self) -> dict:
        data = {
            "manifest_version": MANIFEST_VERSION,
            "run_id": self.run_id,
            "command": self.command,
            "workers": self.workers,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "wall_time_sec": self.wall_time_sec,
            "counts": self.counts,
            "cache": self.cache,
            "degraded_to_serial": self.degraded_to_serial,
            "jobs": self.jobs,
        }
        if self.resumed_from is not None:
            data["resumed_from"] = self.resumed_from
        if self.metrics is not None:
            data["metrics"] = self.metrics
        return data

    def write(self, directory: PathLike) -> Path:
        """Atomically write ``manifest-<run_id>.json`` into ``directory``."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        path = directory / f"manifest-{self.run_id}.json"
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        tmp.write_text(json.dumps(self.to_dict(), indent=2))
        os.replace(tmp, path)
        return path

    @classmethod
    def load(cls, path: PathLike) -> "RunManifest":
        data = json.loads(Path(path).read_text())
        version = data.get("manifest_version")
        if version != MANIFEST_VERSION:
            raise ValueError(f"unsupported manifest version: {version}")
        return cls(
            run_id=data["run_id"],
            command=data["command"],
            workers=data["workers"],
            started_at=data["started_at"],
            finished_at=data["finished_at"],
            wall_time_sec=data["wall_time_sec"],
            jobs=data["jobs"],
            degraded_to_serial=data.get("degraded_to_serial", False),
            resumed_from=data.get("resumed_from"),
            metrics=data.get("metrics"),
        )

    def format_report(self) -> str:
        """Human summary printed at the end of ``repro batch``."""
        counts, cache = self.counts, self.cache
        lines = [
            f"run {self.run_id}: {counts['ok']}/{counts['total']} jobs ok, "
            f"{counts['failed']} failed, "
            f"cache {cache['hits']} hit / {cache['misses']} miss, "
            f"{self.workers} worker(s), {self.wall_time_sec:.2f}s wall",
        ]
        resumed = sum(1 for j in self.jobs if j.get("resumed"))
        if resumed:
            lines.append(
                f"  ({resumed} job(s) carried over from run "
                f"{self.resumed_from})"
            )
        if self.degraded_to_serial:
            lines.append("  (process pool unavailable; ran serially)")
        for job in self.failures:
            err = job.get("error") or {}
            lines.append(
                f"  FAILED {job['label']}: "
                f"{err.get('error_type', '?')}: {err.get('message', '')}"
            )
        return "\n".join(lines)
