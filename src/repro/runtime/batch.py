"""Batch orchestration: fan traces/experiments out across workers.

This is the layer the ``repro batch`` CLI (and the parallelised
``reproduce all`` / ensemble fitting) sits on.  The stock workers are
module-level functions taking a :class:`~repro.runtime.jobs.JobSpec` and
returning a JSON-able dict, so they pickle cleanly into a process pool
and their outputs drop straight into a run manifest.

Per-trace unit of work (``simulate_worker``):

1. fit the trace *through the profile cache* (content-addressed on the
   trace bytes + fit kwargs — a second identical run does zero fitting);
2. simulate each requested counterfactual protocol over the learnt model;
3. return the profile plus a summary triple per protocol (optionally
   saving the predicted traces).

A corrupted trace, a failing estimator, or a crashing protocol yields a
structured failure record for that one job; the rest of the batch is
unaffected.
"""

from __future__ import annotations

import time
from datetime import datetime, timezone
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro import obs
from repro.runtime.cache import ProfileCache
from repro.runtime.executor import BatchExecutor, ExecutorConfig
from repro.runtime.jobs import (
    JobResult,
    JobSpec,
    make_experiment_job,
    make_fit_job,
    make_simulate_job,
)
from repro.runtime.manifest import RunManifest
from repro.trace.io import PathLike

_log = obs.get_logger("repro.runtime")


# ----------------------------------------------------------------------
# Stock workers (module-level: must pickle into worker processes)
# ----------------------------------------------------------------------
def fit_worker(spec: JobSpec) -> Dict[str, Any]:
    """Fit one trace through the cache; returns the profile dict."""
    from repro.core.iboxnet import to_profile

    cache = ProfileCache(spec.params.get("cache_dir"))
    model, hit = cache.fit_cached(
        spec.params["trace_path"],
        spec.params.get("fit_kwargs") or {},
        trace_digest=spec.params.get("trace_digest"),
        repair_policy=spec.params.get("repair_policy", "strict"),
    )
    return {"profile": to_profile(model), "cache_hit": hit}


def simulate_worker(spec: JobSpec) -> Dict[str, Any]:
    """Fit (cached) + simulate every requested protocol over one trace."""
    from repro.core.iboxnet import to_profile
    from repro.trace.io import save_trace
    from repro.trace.metrics import summarize

    params = spec.params
    policy = params.get("repair_policy", "strict")
    cache = ProfileCache(params.get("cache_dir"))
    model, hit = cache.fit_cached(
        params["trace_path"],
        params.get("fit_kwargs") or {},
        trace_digest=params.get("trace_digest"),
        repair_policy=policy,
    )
    duration = params.get("duration")
    seed = int(params.get("seed", 0))
    output_dir = params.get("output_dir")
    summaries: Dict[str, dict] = {}
    for protocol in params["protocols"]:
        sim_duration = duration
        if sim_duration is None:
            from repro.trace.io import load_trace

            sim_duration = load_trace(
                params["trace_path"], policy=policy
            ).duration
        predicted = model.simulate(protocol, duration=sim_duration, seed=seed)
        summary = summarize(predicted)
        summaries[protocol] = {
            "mean_rate_mbps": summary.mean_rate_mbps,
            "p95_delay_ms": summary.p95_delay_ms,
            "loss_percent": summary.loss_percent,
            "packets_sent": summary.packets_sent,
            "packets_delivered": summary.packets_delivered,
        }
        if output_dir:
            stem = Path(params["trace_path"]).stem
            out = Path(output_dir)
            out.mkdir(parents=True, exist_ok=True)
            save_trace(predicted, out / f"{stem}__{protocol}.npz")
    return {
        "trace_path": params["trace_path"],
        "profile": to_profile(model),
        "cache_hit": hit,
        "summaries": summaries,
    }


def experiment_worker(spec: JobSpec) -> Dict[str, Any]:
    """Run one paper experiment; returns its formatted report."""
    from repro.experiments.common import run_experiment

    report = run_experiment(
        spec.params["name"], scale=spec.params.get("scale", "quick")
    )
    return {"name": spec.params["name"], "report": report}


def sweep_worker(spec: JobSpec) -> Dict[str, Any]:
    """Advance one chunk of flow-level sweep scenarios in lockstep."""
    from repro.sweep import ScenarioGrid, run_scenarios

    grid = ScenarioGrid.from_params(spec.params["grid"])
    fleet = run_scenarios(grid.expand())
    return {"grid_id": grid.grid_id, **fleet.to_dict()}


_WORKERS = {
    "fit": fit_worker,
    "simulate": simulate_worker,
    "experiment": experiment_worker,
    "sweep": sweep_worker,
}

#: The job kinds this module can execute (the serve daemon builds its
#: request vocabulary from this).
WORKER_KINDS = tuple(_WORKERS)


def worker_for(kind: str):
    """The stock worker callable for ``kind``; raises on unknown kinds."""
    worker = _WORKERS.get(kind)
    if worker is None:
        raise ValueError(f"unknown job kind: {kind!r}")
    return worker


# ----------------------------------------------------------------------
# Orchestration entry points
# ----------------------------------------------------------------------
def run_jobs(
    specs: Sequence[JobSpec],
    config: Optional[ExecutorConfig] = None,
    command: str = "batch",
    resume_manifest: Optional[RunManifest] = None,
) -> Tuple[List[JobResult], RunManifest]:
    """Execute heterogeneous specs with the stock workers; build a manifest.

    Kinds are dispatched per-spec, so one batch may mix fit, simulate,
    and experiment jobs.

    With ``resume_manifest``, specs whose ``job_id`` already completed
    ``ok`` in that manifest are *not* executed: their prior row is
    carried into the new manifest (marked ``resumed``) and their result
    comes back with ``resumed=True`` and ``value=None``.  Failed and
    never-started jobs re-run, so resuming an interrupted batch yields
    a manifest equivalent to an uninterrupted one.
    """
    config = config or ExecutorConfig()
    # perf_counter for the duration; the ISO stamp is presentation only.
    started_perf = time.perf_counter()
    started_at = datetime.now(timezone.utc).isoformat()

    completed: Dict[str, dict] = {}
    if resume_manifest is not None:
        completed = {
            row["job_id"]: row
            for row in resume_manifest.jobs
            if row["status"] == "ok"
        }
    to_run = [s for s in specs if s.job_id not in completed]
    skipped = len(specs) - len(to_run)
    if skipped:
        obs.metrics().counter("batch.resumed_jobs").inc(skipped)
        _log.info(
            "batch.resume",
            resumed_from=resume_manifest.run_id,
            completed=skipped,
            to_run=len(to_run),
        )

    executor = BatchExecutor(config)
    with obs.span(
        "batch.run", command=command, jobs=len(to_run), workers=config.workers
    ):
        run_results = executor.run(to_run, _dispatch)

    # Positional re-merge (a batch may legitimately contain duplicate
    # job_ids, e.g. the same trace listed twice).
    run_iter = iter(run_results)
    results: List[JobResult] = []
    for spec in specs:
        if spec.job_id in completed:
            row = completed[spec.job_id]
            results.append(
                JobResult(
                    spec=spec,
                    status="ok",
                    value=None,
                    attempts=row.get("attempts", 1),
                    duration_sec=row.get("duration_sec", 0.0),
                    cache_hit=bool(row.get("cache_hit")),
                    resumed=True,
                )
            )
        else:
            results.append(next(run_iter))

    manifest = RunManifest.from_results(
        results,
        command=command,
        workers=config.workers,
        started_perf=started_perf,
        started_at_iso=started_at,
        degraded_to_serial=executor.degraded_to_serial,
        resumed_from=(
            resume_manifest.run_id if resume_manifest is not None else None
        ),
        metrics=obs.metrics_snapshot(),
    )
    return results, manifest


def _dispatch(spec: JobSpec) -> Dict[str, Any]:
    return worker_for(spec.kind)(spec)


def run_batch(
    trace_paths: Sequence[PathLike],
    protocols: Sequence[str],
    duration: Optional[float] = None,
    seed: int = 0,
    fit_kwargs: Optional[Dict[str, Any]] = None,
    cache_dir: Optional[PathLike] = None,
    output_dir: Optional[PathLike] = None,
    manifest_dir: Optional[PathLike] = None,
    config: Optional[ExecutorConfig] = None,
    repair_policy: str = "strict",
    resume_from: Optional[PathLike] = None,
) -> Tuple[List[JobResult], RunManifest, Optional[Path]]:
    """The ``repro batch`` pipeline: one simulate job per trace.

    Returns ``(results, manifest, manifest_path)``; the manifest is
    written only when ``manifest_dir`` is given.  ``repair_policy``
    (``strict|repair|skip``) governs how corrupt traces are loaded and
    is part of each job's identity.  ``resume_from`` points at a prior
    run's manifest: jobs recorded there as ``ok`` are skipped.
    """
    from repro.guard.repair import check_policy

    check_policy(repair_policy)
    resume_manifest = (
        RunManifest.load(resume_from) if resume_from is not None else None
    )
    specs = [
        make_simulate_job(
            path,
            protocols=protocols,
            duration=duration,
            seed=seed,
            fit_kwargs=fit_kwargs,
            cache_dir=None if cache_dir is None else str(cache_dir),
            output_dir=None if output_dir is None else str(output_dir),
            repair_policy=repair_policy,
        )
        for path in trace_paths
    ]
    results, manifest = run_jobs(
        specs,
        config=config,
        command="batch",
        resume_manifest=resume_manifest,
    )
    manifest_path = manifest.write(manifest_dir) if manifest_dir else None
    return results, manifest, manifest_path


def fit_profiles(
    trace_paths: Sequence[PathLike],
    fit_kwargs: Optional[Dict[str, Any]] = None,
    cache_dir: Optional[PathLike] = None,
    config: Optional[ExecutorConfig] = None,
) -> Tuple[List[Optional[Any]], List[JobResult]]:
    """Fit many traces in parallel through the cache.

    Returns ``(models, results)`` aligned with ``trace_paths``; a failed
    fit leaves ``None`` at its position (and a structured error in the
    matching result) instead of raising.
    """
    from repro.core.iboxnet import from_profile

    specs = [
        make_fit_job(
            path,
            fit_kwargs=fit_kwargs,
            extra_params={
                "cache_dir": None if cache_dir is None else str(cache_dir)
            },
        )
        for path in trace_paths
    ]
    results, _ = run_jobs(specs, config=config, command="fit")
    models = [
        from_profile(r.value["profile"]) if r.ok else None for r in results
    ]
    return models, results


def run_experiments(
    names: Sequence[str],
    scale: str = "quick",
    config: Optional[ExecutorConfig] = None,
) -> Tuple[List[JobResult], RunManifest]:
    """Fan the paper experiments out across workers (``reproduce all``)."""
    specs = [make_experiment_job(name, scale=scale) for name in names]
    return run_jobs(specs, config=config, command="reproduce")
