"""Synthetic real-time-conferencing dataset (the §5.2 / Table 1 workload).

The paper used ~540 traces from a production RTC service.  We generate the
equivalent: each "call" is a delay-sensitive :class:`~repro.protocols.rtc.
RTCSender` flow over a randomized path with randomized cross traffic.  The
Table 1 metric is the distribution of per-call 95th-percentile delays.

The same module generates the **control-loop-bias** training/test split of
§4.2 / Fig. 7: iBoxML trained on RTC (control-loop) traces over an ns-like
fixed topology, then asked to predict delays for a high-rate CBR (open
loop) sender under varying cross-traffic — the setting where the bias
shows up and the CT input repairs it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.simulation import units
from repro.simulation.topology import (
    ConstantBandwidth,
    OnOffCT,
    PathConfig,
    PoissonCT,
    run_flow,
)
from repro.trace.records import Trace


@dataclass
class RTCDataset:
    """A set of RTC "calls" (traces) with their path configs."""

    traces: List[Trace] = field(default_factory=list)
    configs: List[PathConfig] = field(default_factory=list)

    def split(self, train_fraction: float = 0.6) -> Tuple["RTCDataset", "RTCDataset"]:
        cut = max(1, int(len(self.traces) * train_fraction))
        return (
            RTCDataset(self.traces[:cut], self.configs[:cut]),
            RTCDataset(self.traces[cut:], self.configs[cut:]),
        )

    def __len__(self) -> int:
        return len(self.traces)


def _sample_rtc_path(rng: np.random.Generator) -> PathConfig:
    """An access-network path as seen by a conferencing call.

    The cross-traffic fraction extends past the link capacity: a real
    conferencing service sees a share of calls on paths congested by other
    traffic, and those congested calls are what make the Table 1 per-call
    p95-delay distribution wide enough for the CT input to matter.
    """
    rate = units.mbps_to_bytes_per_sec(rng.uniform(1.5, 8.0))
    delay = units.ms_to_sec(rng.uniform(10.0, 50.0))
    buffer_bytes = rate * 2 * delay * rng.uniform(2.0, 6.0)
    fraction = rng.uniform(0.0, 1.3)
    if fraction < 0.1:
        ct: tuple = ()
    elif rng.random() < 0.5:
        ct = (PoissonCT(rate_bytes_per_sec=fraction * rate),)
    else:
        ct = (
            OnOffCT(
                peak_rate_bytes_per_sec=1.6 * fraction * rate,
                mean_on=rng.uniform(1.0, 5.0),
                mean_off=rng.uniform(1.0, 5.0),
            ),
        )
    return PathConfig(
        bandwidth=ConstantBandwidth(rate),
        propagation_delay=delay,
        buffer_bytes=max(4500.0, buffer_bytes),
        cross_traffic=ct,
    )


def generate_rtc_dataset(
    n_calls: int,
    duration: float = 30.0,
    base_seed: int = 0,
) -> RTCDataset:
    """Generate ``n_calls`` RTC call traces over randomized paths."""
    dataset = RTCDataset()
    for k in range(n_calls):
        seed = base_seed + k
        rng = np.random.default_rng(seed)
        config = _sample_rtc_path(rng)
        result = run_flow(
            config,
            "rtc",
            duration=duration,
            seed=seed,
            flow_id=f"call-{seed}",
        )
        dataset.traces.append(result.trace)
        dataset.configs.append(config)
    return dataset


def control_loop_bias_setup(
    n_train: int = 12,
    n_test: int = 6,
    duration: float = 30.0,
    rate_mbps: float = 6.0,
    base_seed: int = 0,
    cbr_rate_fraction: float = 0.4,
) -> Tuple[List[Trace], List[Trace], Trace]:
    """The Fig. 7 experiment data.

    Training: RTC (delay-sensitive control loop) flows on a *fixed* simple
    ns-like topology with varying amounts of Poisson cross traffic.
    Test: a high-rate CBR sender (``cbr_rate_fraction`` of the link) over
    the same topology, again with varying cross traffic — so the ground
    truth "exhibits high delay frequently" while the control-loop-biased
    model will not.

    Returns (train_traces, test_traces, calibration_trace).  The
    calibration trace is a single bulk-TCP run over the idle path: RTC's
    control loop never saturates the link (the §6 "sender tries to
    saturate the bottleneck" assumption is violated), so the §3 bandwidth
    estimator needs one saturating flow.  It is meant for *parameter
    estimation only* — folding it into model training would contaminate
    the control-loop-bias experiment with open-loop high-delay data.
    """
    rate = units.mbps_to_bytes_per_sec(rate_mbps)
    delay = units.ms_to_sec(20.0)
    buffer_bytes = rate * 2 * delay * 6.0

    def config_with_ct(ct_fraction: float) -> PathConfig:
        ct: tuple = ()
        if ct_fraction > 0.01:
            ct = (PoissonCT(rate_bytes_per_sec=ct_fraction * rate),)
        return PathConfig(
            bandwidth=ConstantBandwidth(rate),
            propagation_delay=delay,
            buffer_bytes=buffer_bytes,
            cross_traffic=ct,
        )

    train: List[Trace] = []
    rng = np.random.default_rng(base_seed)
    for k in range(n_train):
        # The CT sweep extends into overload: with heavy cross traffic the
        # queue congests no matter how far the RTC loop backs off, so the
        # training data does contain high delays *correlated with CT* —
        # the signal the §5.2 CT input needs in order to undo the bias.
        fraction = float(rng.uniform(0.0, 1.3))
        result = run_flow(
            config_with_ct(fraction),
            "rtc",
            duration=duration,
            seed=base_seed + k,
            flow_id=f"rtc-train-{k}",
        )
        train.append(result.trace)

    test: List[Trace] = []
    for k in range(n_test):
        # Varying, often heavy, cross traffic: the CBR sender does not
        # yield, so delays genuinely go high.  The sweep extends well into
        # overload — the regime where the ground truth "exhibits high
        # delay frequently" (§4.2).
        fraction = 0.4 + 2.0 * k / max(n_test - 1, 1)
        result = run_flow(
            config_with_ct(fraction),
            "cbr",
            duration=duration,
            seed=base_seed + 500 + k,
            flow_id=f"cbr-test-{k}",
            sender_kwargs={
                "rate_bytes_per_sec": cbr_rate_fraction * rate
            },
        )
        test.append(result.trace)

    calibration = run_flow(
        config_with_ct(0.0),
        "cubic",
        duration=min(duration, 15.0),
        seed=base_seed + 900,
        flow_id="calibration",
    ).trace
    return train, test, calibration
