"""Network-scenario sampling: randomized path configurations.

The samplers encode what is publicly known about the Pantheon paths the
paper used: the India Cellular path has a few-Mb/s fluctuating bottleneck
(proportional-fair cellular scheduling), tens of ms of propagation delay,
deep buffers (hundreds of ms of bufferbloat — Fig. 2's delay axis reaches
400 ms), competing cross traffic, and occasional packet reordering;
Ethernet paths are faster and cleaner (100–200 k packets per 30 s trace,
i.e. tens of Mb/s).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.simulation import units
from repro.simulation.topology import (
    CellularBandwidth,
    ConstantBandwidth,
    CrossTrafficSpec,
    FlowCT,
    OnOffCT,
    PathConfig,
    PoissonCT,
)


@dataclass(frozen=True)
class CellularScenarioSampler:
    """Samples "India Cellular"-like paths.

    All ranges are uniform unless noted.  Rates in Mb/s, delays in ms;
    buffer expressed in bandwidth-delay products (BDP multiples), following
    how bufferbloat is usually characterised.
    """

    mean_rate_mbps: Tuple[float, float] = (1.5, 6.0)
    propagation_delay_ms: Tuple[float, float] = (20.0, 60.0)
    buffer_bdp_multiples: Tuple[float, float] = (2.0, 8.0)
    # Moderate rate variability: strong enough to exercise the estimators,
    # mild enough that a single-bottleneck model remains a sane fit — the
    # regime Fig. 2's good match implies for the real India Cellular path.
    volatility: Tuple[float, float] = (0.1, 0.3)
    # Mild multipath reordering: enough to show up in SAX pattern 'a'
    # (~0.5-2 % of packets, Fig. 8) without the spurious fast-retransmits a
    # long detour would inflict on the TCP flows generating ground truth.
    reorder_prob: Tuple[float, float] = (0.003, 0.015)
    reorder_extra_delay_ms: Tuple[float, float] = (4.0, 12.0)
    cross_traffic_fraction: Tuple[float, float] = (0.1, 0.5)
    # Probability that a sampled path has each kind of CT (exclusive draw).
    p_no_ct: float = 0.2
    p_poisson_ct: float = 0.4
    p_onoff_ct: float = 0.4

    def sample(self, seed: int) -> PathConfig:
        """Draw one path configuration; fully determined by ``seed``."""
        rng = np.random.default_rng(seed)
        mean_rate = units.mbps_to_bytes_per_sec(
            rng.uniform(*self.mean_rate_mbps)
        )
        delay = units.ms_to_sec(rng.uniform(*self.propagation_delay_ms))
        bdp = mean_rate * 2 * delay
        buffer_bytes = max(
            3 * 1500.0, bdp * rng.uniform(*self.buffer_bdp_multiples)
        )
        ct = self._sample_cross_traffic(rng, mean_rate)
        return PathConfig(
            bandwidth=CellularBandwidth(
                mean_rate_bytes_per_sec=mean_rate,
                volatility=rng.uniform(*self.volatility),
                fade_prob=0.004,
            ),
            propagation_delay=delay,
            buffer_bytes=buffer_bytes,
            reorder_prob=rng.uniform(*self.reorder_prob),
            reorder_extra_delay=units.ms_to_sec(
                rng.uniform(*self.reorder_extra_delay_ms)
            ),
            cross_traffic=ct,
        )

    def _sample_cross_traffic(
        self, rng: np.random.Generator, mean_rate: float
    ) -> Tuple[CrossTrafficSpec, ...]:
        draw = rng.random()
        fraction = rng.uniform(*self.cross_traffic_fraction)
        if draw < self.p_no_ct:
            return ()
        if draw < self.p_no_ct + self.p_poisson_ct:
            return (PoissonCT(rate_bytes_per_sec=fraction * mean_rate),)
        return (
            OnOffCT(
                peak_rate_bytes_per_sec=2 * fraction * mean_rate,
                mean_on=rng.uniform(1.0, 4.0),
                mean_off=rng.uniform(1.0, 4.0),
            ),
        )


@dataclass(frozen=True)
class EthernetScenarioSampler:
    """Samples wired (Ethernet-like) Pantheon paths: faster, steadier,
    shallower-buffered, no reordering."""

    rate_mbps: Tuple[float, float] = (20.0, 60.0)
    propagation_delay_ms: Tuple[float, float] = (10.0, 80.0)
    buffer_bdp_multiples: Tuple[float, float] = (0.5, 2.0)
    cross_traffic_fraction: Tuple[float, float] = (0.0, 0.3)

    def sample(self, seed: int) -> PathConfig:
        rng = np.random.default_rng(seed)
        rate = units.mbps_to_bytes_per_sec(rng.uniform(*self.rate_mbps))
        delay = units.ms_to_sec(rng.uniform(*self.propagation_delay_ms))
        bdp = rate * 2 * delay
        fraction = rng.uniform(*self.cross_traffic_fraction)
        ct: Tuple[CrossTrafficSpec, ...] = ()
        if fraction > 0.02:
            ct = (PoissonCT(rate_bytes_per_sec=fraction * rate),)
        return PathConfig(
            bandwidth=ConstantBandwidth(rate),
            propagation_delay=delay,
            buffer_bytes=max(
                3 * 1500.0, bdp * rng.uniform(*self.buffer_bdp_multiples)
            ),
            cross_traffic=ct,
        )


def instance_test_config(
    rate_mbps: float = 8.0,
    propagation_delay_ms: float = 25.0,
    buffer_bdp_multiples: float = 4.0,
    ct_start: float = 0.0,
    ct_duration: float = 10.0,
    ct_protocol: str = "cubic",
) -> PathConfig:
    """The §3.1.2 instance-test setup: a known, fixed configuration with
    one closed-loop cross-traffic flow of ``ct_duration`` seconds whose
    *timing* differs between instances (0–10 s / 20–30 s / 40–50 s)."""
    rate = units.mbps_to_bytes_per_sec(rate_mbps)
    delay = units.ms_to_sec(propagation_delay_ms)
    return PathConfig(
        bandwidth=ConstantBandwidth(rate),
        propagation_delay=delay,
        buffer_bytes=rate * 2 * delay * buffer_bdp_multiples,
        cross_traffic=(
            FlowCT(
                protocol=ct_protocol,
                start=ct_start,
                stop=ct_start + ct_duration,
            ),
        ),
    )
