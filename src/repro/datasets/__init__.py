"""Synthetic datasets standing in for the paper's proprietary data.

The paper evaluates on (a) Pantheon testbed traces — most prominently the
"India Cellular" path — and (b) ~540 traces from a production real-time
conferencing service.  Neither is available offline, so these modules
generate the closest synthetic equivalents by running real protocol
implementations over randomized simulated paths (see DESIGN.md §2 for the
substitution argument).  Ground truth (true b/d/B, true cross-traffic) is
recorded alongside each trace, enabling estimator validation the original
authors could not perform.
"""

from repro.datasets import pantheon, rtc, scenarios
from repro.datasets.scenarios import (
    CellularScenarioSampler,
    EthernetScenarioSampler,
)
from repro.datasets.pantheon import PantheonDataset, PantheonRun, generate_dataset, generate_run
from repro.datasets.rtc import RTCDataset, generate_rtc_dataset

__all__ = [
    "CellularScenarioSampler",
    "EthernetScenarioSampler",
    "PantheonDataset",
    "PantheonRun",
    "RTCDataset",
    "generate_dataset",
    "generate_rtc_dataset",
    "generate_run",
    "pantheon",
    "rtc",
    "scenarios",
]
