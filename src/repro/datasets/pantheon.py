"""Synthetic Pantheon-like dataset generation.

Pantheon [45] collected 30-second traces of many congestion-control
protocols over real paths; the paper trains on Cubic ("control") traces
and evaluates predictions for Vegas ("treatment").  Here every "path" is a
sampled :class:`~repro.simulation.topology.PathConfig` and every "run" is a
full packet-level simulation of one protocol over it, so the dataset
carries both the end-to-end trace and the normally unobservable ground
truth.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.datasets.scenarios import CellularScenarioSampler
from repro.simulation.topology import FlowRunResult, PathConfig, run_flow
from repro.trace.records import Trace

DEFAULT_DURATION = 30.0


@dataclass
class PantheonRun:
    """One protocol run over one path."""

    path_id: int
    protocol: str
    seed: int
    config: PathConfig
    result: FlowRunResult

    @property
    def trace(self) -> Trace:
        return self.result.trace


@dataclass
class PantheonDataset:
    """A collection of runs grouped by path."""

    runs: List[PantheonRun] = field(default_factory=list)

    def by_protocol(self, protocol: str) -> List[PantheonRun]:
        return [r for r in self.runs if r.protocol == protocol]

    def by_path(self, path_id: int) -> List[PantheonRun]:
        return [r for r in self.runs if r.path_id == path_id]

    def traces(self, protocol: Optional[str] = None) -> List[Trace]:
        runs = self.runs if protocol is None else self.by_protocol(protocol)
        return [r.trace for r in runs]

    def paired_runs(
        self, control: str, treatment: str
    ) -> List[Tuple[PantheonRun, PantheonRun]]:
        """(control, treatment) run pairs sharing a path — the A/B pairs."""
        control_by_path: Dict[int, PantheonRun] = {
            r.path_id: r for r in self.by_protocol(control)
        }
        pairs = []
        for run in self.by_protocol(treatment):
            if run.path_id in control_by_path:
                pairs.append((control_by_path[run.path_id], run))
        return pairs

    def split(self, train_fraction: float = 0.6) -> Tuple["PantheonDataset", "PantheonDataset"]:
        """Deterministic train/test split by path id."""
        path_ids = sorted({r.path_id for r in self.runs})
        cut = max(1, int(len(path_ids) * train_fraction))
        train_ids = set(path_ids[:cut])
        train = PantheonDataset(
            [r for r in self.runs if r.path_id in train_ids]
        )
        test = PantheonDataset(
            [r for r in self.runs if r.path_id not in train_ids]
        )
        return train, test

    def __len__(self) -> int:
        return len(self.runs)


def generate_run(
    seed: int,
    protocol: str = "cubic",
    duration: float = DEFAULT_DURATION,
    config: Optional[PathConfig] = None,
    sampler: Optional[CellularScenarioSampler] = None,
) -> PantheonRun:
    """Generate a single Pantheon-like run.

    When ``config`` is omitted, a cellular path is sampled from ``seed``;
    the protocol run itself uses a decorrelated seed so the same path can
    host several independent runs.
    """
    if sampler is None:
        sampler = CellularScenarioSampler()
    if config is None:
        config = sampler.sample(seed)
    result = run_flow(config, protocol, duration=duration, seed=seed)
    return PantheonRun(
        path_id=seed,
        protocol=protocol,
        seed=seed,
        config=config,
        result=result,
    )


def generate_dataset(
    n_paths: int,
    protocols: Sequence[str] = ("cubic", "vegas"),
    duration: float = DEFAULT_DURATION,
    base_seed: int = 0,
    sampler: Optional[CellularScenarioSampler] = None,
    runs_per_protocol: int = 1,
) -> PantheonDataset:
    """Generate a dataset of ``n_paths`` paths x protocols x repetitions.

    Runs of different protocols on the same path share the path
    configuration (including the bandwidth realisation seed) so A/B
    comparisons are apples-to-apples, while each run's protocol dynamics
    use its own seed.
    """
    if sampler is None:
        sampler = CellularScenarioSampler()
    dataset = PantheonDataset()
    for k in range(n_paths):
        path_seed = base_seed + k
        config = sampler.sample(path_seed)
        for p_index, protocol in enumerate(protocols):
            for rep in range(runs_per_protocol):
                run_seed = path_seed * 1_000 + p_index * 100 + rep
                result = run_flow(
                    config, protocol, duration=duration, seed=run_seed,
                    flow_id=f"{protocol}-p{path_seed}-r{rep}",
                    path_seed=path_seed,
                )
                dataset.runs.append(
                    PantheonRun(
                        path_id=path_seed,
                        protocol=protocol,
                        seed=run_seed,
                        config=config,
                        result=result,
                    )
                )
    return dataset
