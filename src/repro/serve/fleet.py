"""Fleet manager: spawn, route to, supervise, and roll up N shard daemons.

``repro serve fleet --shards N`` turns the single-daemon service of
DESIGN.md §10 into a horizontally sharded one without changing any shard
invariant.  The manager:

* spawns N ordinary ``repro serve run`` daemons, each with its own state
  dir ``<state>/shard-<i>`` (own WAL journal, supervisor, breaker, live
  snapshot) and its own unix socket — shards never share files, so the
  single-writer lock discipline is untouched;
* listens on one public endpoint — default unix socket
  ``<state>/fleet.sock``; ``--bind tcp:<host>:<port>`` for cross-node
  fleets (the bound endpoint is published in ``<state>/fleet.endpoint``)
  — via :class:`repro.serve.router.FleetRouter`, consistent-hashing each
  ``job_id`` across the *live* shards (async intake; there is no fleet
  spool walk to poll);
* supervises the shards: a dead process (or a shard the router fails to
  reach) is marked dead, its ring points are removed, its orphaned
  admitted-but-incomplete jobs are handed off to the surviving shards,
  and the shard is respawned with backoff and re-admitted to the ring
  once its readiness marker reappears.

Handoff is the only cross-shard write, and it is journal-first: while
holding the dead shard's state-dir lock the manager appends a terminal
``moved:<target>`` record for every orphan *before* resubmitting it, so
the restarted shard will not re-run the job and a manager crash between
the two steps is recovered by :meth:`FleetManager._recover_moved` at the
next fleet start (see DESIGN.md §13 for the invariant argument).

Usage — run a fleet and talk to it::

    from repro.serve import FleetConfig, FleetManager, submit_via_socket

    config = FleetConfig(state_dir="fleet-state", shards=3)
    manager = FleetManager(config)          # manager.run() blocks; or:
    # $ repro serve fleet --state fleet-state --shards 3 &
    responses = submit_via_socket(
        "fleet-state/fleet.sock",
        [{"kind": "chaos", "params": {"fault": "sleep", "seconds": 0.1}}],
    )
    print(responses[0]["status"], "on", responses[0]["shard"])

Offline inspection works on the state dir alone (live or dead fleet)::

    from repro.serve import fleet_status, format_fleet_status
    print(format_fleet_status(fleet_status("fleet-state")))
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
import subprocess
import sys
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from repro.obs import get_logger, metrics
from repro.obs.summarize import merge_metrics_files
from repro.runtime.locks import ProcessLock
from repro.serve.client import read_live_snapshot, serve_status
from repro.serve.daemon import ENDPOINT_FILE
from repro.serve.journal import JobJournal
from repro.serve.router import DEFAULT_REPLICAS, FleetRouter, HashRing
from repro.serve.transport import Endpoint, parse_endpoint
from repro.trace.io import PathLike

log = get_logger("repro.serve.fleet")

FLEET_META = "fleet.json"
FLEET_PID = "fleet.pid"
FLEET_SOCKET = "fleet.sock"
#: File naming the router's actually-bound public endpoint (the TCP
#: port of a ``tcp:...:0`` bind is only known after listen).
FLEET_ENDPOINT = "fleet.endpoint"

#: Fleet-wide job status precedence for cross-shard dedupe: a job that
#: completed anywhere is completed, regardless of ``moved`` tombstones
#: or stale pending records elsewhere.
STATUS_PRECEDENCE = ("completed", "failed", "leased", "pending", "rejected")


def shard_name(index: int) -> str:
    return f"shard-{index}"


@dataclass
class FleetConfig:
    """Everything ``repro serve fleet`` needs to run a shard fleet."""

    state_dir: Path
    shards: int = 3
    socket_path: Optional[Path] = None  # default: <state>/fleet.sock
    #: Public endpoint spec for the router: ``unix:<path>`` or
    #: ``tcp:<host>:<port>`` (``tcp:...:0`` = ephemeral port, published
    #: in ``<state>/fleet.endpoint``).  When the fleet binds TCP the
    #: shards do too (each on ``tcp:127.0.0.1:0``, discovered through
    #: their ``serve.endpoint`` files) — this is the cross-node shape:
    #: only the transport layer changes.  Mutually exclusive with
    #: ``socket_path``.
    bind: Optional[str] = None
    workers_per_shard: int = 2
    queue_limit: int = 64
    default_timeout_sec: Optional[float] = None
    drain_timeout_sec: float = 15.0
    shard_poll_interval: float = 0.05
    supervise_interval_sec: float = 0.25
    heartbeat_timeout_sec: float = 10.0
    #: Consecutive supervision sweeps a shard may stay router-suspect
    #: (forwarding to it keeps failing while its process is alive)
    #: before the manager presumes it wedged and SIGKILLs it into the
    #: normal dead-shard handoff/respawn path.
    suspect_sweep_limit: int = 4
    restart_backoff_sec: float = 0.5
    restart_backoff_max_sec: float = 10.0
    start_timeout_sec: float = 30.0
    snapshot_interval_sec: float = 1.0
    max_runtime_sec: Optional[float] = None
    fsync: bool = True
    ring_replicas: int = DEFAULT_REPLICAS

    def __post_init__(self) -> None:
        self.state_dir = Path(self.state_dir)
        if self.shards < 1:
            raise ValueError("a fleet needs at least one shard")
        if self.socket_path is not None and self.bind is not None:
            raise ValueError("pass either socket_path or bind, not both")
        if self.bind is not None:
            self.endpoint: Endpoint = parse_endpoint(self.bind)
        elif self.socket_path is not None:
            self.socket_path = Path(self.socket_path)
            self.endpoint = parse_endpoint(self.socket_path)
        else:
            self.endpoint = parse_endpoint(self.state_dir / FLEET_SOCKET)
        if self.endpoint.scheme == "unix":
            self.socket_path = self.endpoint.path

    def shard_state_dir(self, index: int) -> Path:
        return self.state_dir / shard_name(index)

    def shard_bind(self, index: int) -> str:
        """The ``--bind`` spec each shard daemon is spawned with."""
        if self.endpoint.scheme == "tcp":
            # Ephemeral loopback port; the manager learns the real one
            # from the shard's serve.endpoint file at readiness.
            return "tcp:127.0.0.1:0"
        return f"unix:{self.shard_state_dir(index) / 'serve.sock'}"


@dataclass
class ShardHandle:
    """One shard daemon as the manager sees it."""

    name: str
    index: int
    state_dir: Path
    process: Optional[subprocess.Popen] = None
    status: str = "starting"  # starting | live | dead
    restarts: int = 0
    needs_handoff: bool = False
    next_restart_at: float = 0.0  # monotonic clock
    last_exit: Optional[int] = None
    #: Consecutive sweeps the router has reported this shard unreachable.
    suspect_sweeps: int = 0
    #: Monotonic time this shard last became live; gives a respawned
    #: shard a grace window before its (possibly stale, pre-restart)
    #: snapshot can trip the heartbeat check.
    live_since: float = 0.0

    @property
    def socket_path(self) -> Path:
        return self.state_dir / "serve.sock"

    @property
    def pid_path(self) -> Path:
        return self.state_dir / "serve.pid"

    @property
    def endpoint_path(self) -> Path:
        return self.state_dir / ENDPOINT_FILE

    def endpoint(self) -> Optional[Endpoint]:
        """The shard's published intake endpoint (unix path or the TCP
        host:port the kernel actually assigned), or None pre-readiness."""
        try:
            return parse_endpoint(self.endpoint_path.read_text().strip())
        except (FileNotFoundError, ValueError, OSError):
            return None

    def process_alive(self) -> bool:
        return self.process is not None and self.process.poll() is None

    def ready(self) -> bool:
        """Daemon wrote its pid marker (post signal-handler install) and
        published its bound endpoint."""
        if not self.process_alive():
            return False
        try:
            pid = int(self.pid_path.read_text().strip())
        except (FileNotFoundError, ValueError, OSError):
            return False
        return pid == self.process.pid and self.endpoint() is not None


class FleetManager:
    """Spawns and supervises the shard fleet behind one router socket.

    One instance per fleet state dir; :meth:`run` blocks until SIGTERM /
    SIGINT (or ``max_runtime_sec``) and returns an exit code, mirroring
    :meth:`repro.serve.daemon.ServeDaemon.run`.
    """

    def __init__(self, config: FleetConfig):
        self.config = config
        self.state_dir = config.state_dir
        self.state_dir.mkdir(parents=True, exist_ok=True)
        self.shards: List[ShardHandle] = [
            ShardHandle(
                name=shard_name(i),
                index=i,
                state_dir=config.shard_state_dir(i),
            )
            for i in range(config.shards)
        ]
        self._by_name = {s.name: s for s in self.shards}
        self._ring = HashRing([], config.ring_replicas)
        self._pending_handoffs: Dict[str, Dict[str, Any]] = {}
        #: Handed-off jobs the fleet could not deliver anywhere, by
        #: job_id — kept (with the verbatim request) and surfaced in
        #: health/stats so operators can detect and replay them.
        self._lost_handoffs: Dict[str, Dict[str, Any]] = {}
        self._suspect: set = set()
        self._stop = asyncio.Event()
        self._started_at = time.time()
        self.router = FleetRouter(
            config.endpoint,
            owner_of=self._owner_of,
            control=self._control,
            shards=self._live_shards,
            on_shard_error=self._note_suspect,
            default_timeout_sec=config.default_timeout_sec,
        )

    # ------------------------------------------------------------------
    # Ring / routing callbacks
    # ------------------------------------------------------------------
    def _rebuild_ring(self) -> None:
        live = [s.name for s in self.shards if s.status == "live"]
        self._ring = HashRing(live, self.config.ring_replicas)
        metrics().gauge("serve.fleet.live_shards").set(len(live))

    def _owner_of(self, job_id: str) -> Optional[Tuple[str, Endpoint]]:
        if len(self._ring) == 0:
            return None
        name = self._ring.owner(job_id)
        endpoint = self._by_name[name].endpoint()
        if endpoint is None:  # ring admission raced an endpoint unlink
            return None
        return name, endpoint

    def _live_shards(self) -> List[Tuple[str, Endpoint]]:
        """Every live shard with a published endpoint — the router's
        fan-out set for ``fetch`` when the hashed owner misses."""
        out: List[Tuple[str, Endpoint]] = []
        for shard in self.shards:
            if shard.status != "live":
                continue
            endpoint = shard.endpoint()
            if endpoint is not None:
                out.append((shard.name, endpoint))
        return out

    def _note_suspect(self, name: str) -> None:
        """Router-side forwarding failure: check this shard next sweep."""
        self._suspect.add(name)

    # ------------------------------------------------------------------
    # Spawning
    # ------------------------------------------------------------------
    def _shard_argv(self, shard: ShardHandle) -> List[str]:
        config = self.config
        argv = [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "run",
            "--state",
            str(shard.state_dir),
            "--bind",
            config.shard_bind(shard.index),
            "--workers",
            str(config.workers_per_shard),
            "--queue-limit",
            str(config.queue_limit),
            "--poll-interval",
            str(config.shard_poll_interval),
            "--drain-timeout",
            str(config.drain_timeout_sec),
            "--snapshot-interval",
            str(config.snapshot_interval_sec),
        ]
        if config.default_timeout_sec is not None:
            argv += ["--default-timeout", str(config.default_timeout_sec)]
        if config.max_runtime_sec is not None:
            # Shards outlive the drill watchdog slightly so the fleet
            # always drains them first.
            argv += ["--max-runtime-sec", str(config.max_runtime_sec + 30)]
        if not config.fsync:
            argv.append("--no-fsync")
        return argv

    def _spawn(self, shard: ShardHandle) -> None:
        import repro

        shard.state_dir.mkdir(parents=True, exist_ok=True)
        # Stale pid/endpoint markers from a SIGKILLed run would
        # otherwise make the shard look ready (and routable) before the
        # new daemon is — worse for tcp binds, where the old port is gone.
        shard.pid_path.unlink(missing_ok=True)
        shard.endpoint_path.unlink(missing_ok=True)
        src_root = str(Path(repro.__file__).resolve().parents[1])
        env = dict(os.environ)
        env["PYTHONPATH"] = src_root + os.pathsep + env.get("PYTHONPATH", "")
        log_dir = self.state_dir / "logs"
        log_dir.mkdir(exist_ok=True)
        log_file = open(log_dir / f"{shard.name}.log", "a")
        shard.process = subprocess.Popen(
            self._shard_argv(shard),
            stdout=log_file,
            stderr=subprocess.STDOUT,
            env=env,
        )
        log_file.close()
        shard.status = "starting"
        shard.suspect_sweeps = 0
        log.info("fleet.shard_spawned", shard=shard.name, pid=shard.process.pid)

    # ------------------------------------------------------------------
    # Start-up
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Spawn every shard, wait for readiness, recover half-handoffs."""
        self._check_not_running()
        self._write_meta()
        for shard in self.shards:
            self._spawn(shard)
        deadline = time.monotonic() + self.config.start_timeout_sec
        while time.monotonic() < deadline:
            for shard in self.shards:
                if shard.status == "starting" and shard.ready():
                    shard.status = "live"
                    shard.live_since = time.monotonic()
            if all(s.status == "live" for s in self.shards):
                break
            dead = [s for s in self.shards if not s.process_alive()]
            if dead:
                raise RuntimeError(
                    f"shard {dead[0].name} exited during fleet start "
                    f"(rc={dead[0].process.returncode}); "
                    f"see {self.state_dir / 'logs' / (dead[0].name + '.log')}"
                )
            time.sleep(0.05)
        not_ready = [s.name for s in self.shards if s.status != "live"]
        if not_ready:
            raise RuntimeError(f"shards never became ready: {not_ready}")
        self._rebuild_ring()
        self._recover_moved()
        log.info(
            "fleet.started",
            shards=len(self.shards),
            endpoint=self.config.endpoint.describe(),
            recovering=len(self._pending_handoffs),
        )

    def _check_not_running(self) -> None:
        pid_path = self.state_dir / FLEET_PID
        try:
            pid = int(pid_path.read_text().strip())
        except (FileNotFoundError, ValueError, OSError):
            return
        try:
            os.kill(pid, 0)
        except (ProcessLookupError, PermissionError):
            pid_path.unlink(missing_ok=True)
            return
        raise RuntimeError(
            f"another fleet (pid {pid}) already runs {self.state_dir}"
        )

    def _write_meta(self) -> None:
        meta = {
            "version": 1,
            "shards": self.config.shards,
            "shard_names": [s.name for s in self.shards],
            "socket": (
                str(self.config.socket_path)
                if self.config.socket_path is not None
                else None
            ),
            "endpoint": self.config.endpoint.describe(),
        }
        path = self.state_dir / FLEET_META
        tmp = path.with_suffix(".json.tmp")
        tmp.write_text(json.dumps(meta, indent=2) + "\n")
        os.replace(tmp, path)

    def _recover_moved(self) -> None:
        """Finish handoffs a previous manager started but never delivered.

        A moved job whose ``moved:<target>`` tombstone is the *only*
        trace of it fleet-wide was journaled out of its dead shard but
        never resubmitted (the manager died in between).  Resubmit it to
        its current ring owner; everywhere else the tombstone is inert.
        """
        states = {
            s.name: JobJournal.read_state(s.state_dir / "journal")
            for s in self.shards
        }
        rank = {status: i for i, status in enumerate(STATUS_PRECEDENCE)}
        for name, state in states.items():
            for job_id, job in state.moved_out().items():
                best = min(
                    (
                        other.jobs[job_id].status
                        for other in states.values()
                        if job_id in other.jobs
                    ),
                    key=lambda s: rank.get(s, len(rank)),
                )
                if best == "rejected" and job_id not in self._pending_handoffs:
                    request = dict(job.request)
                    if request.get("job_id") and request.get("kind"):
                        # ``requeue`` lets the resubmission through the
                        # moved-tombstone dedupe if its current ring
                        # owner is the (respawned) shard that moved it.
                        request["requeue"] = True
                        self._pending_handoffs[job_id] = request
                        log.warning(
                            "fleet.recovering_lost_handoff",
                            job_id=job_id,
                            from_shard=name,
                        )
                    else:
                        self._lose_handoff(
                            job_id,
                            request,
                            reason="malformed_moved_request",
                            from_shard=name,
                        )

    # ------------------------------------------------------------------
    # Supervision
    # ------------------------------------------------------------------
    def _sweep(self) -> None:
        now = time.monotonic()
        for shard in self.shards:
            if shard.status in ("starting", "live"):
                if not shard.process_alive():
                    self._mark_dead(shard)
                elif shard.name in self._suspect:
                    # The router could not reach it but the process is
                    # up.  One suspect sweep is usually transient (e.g.
                    # mid-restart); a shard that stays unreachable sweep
                    # after sweep is wedged and must be failed over, or
                    # its ring keys are rejected indefinitely.
                    shard.suspect_sweeps += 1
                    if (
                        shard.suspect_sweeps
                        >= self.config.suspect_sweep_limit
                    ):
                        self._kill_wedged(
                            shard,
                            "router_unreachable",
                            sweeps=shard.suspect_sweeps,
                        )
                else:
                    shard.suspect_sweeps = 0
                    if shard.status == "live":
                        snapshot = read_live_snapshot(shard.state_dir)
                        if (
                            snapshot is not None
                            and snapshot["age_sec"]
                            > self.config.heartbeat_timeout_sec
                            and now - shard.live_since
                            > self.config.heartbeat_timeout_sec
                        ):
                            # Alive process, stale heartbeat: the
                            # flusher publishes every
                            # snapshot_interval_sec, so this is a wedged
                            # main loop — fail it over.  (The live_since
                            # grace keeps a respawned shard's leftover
                            # pre-restart snapshot from re-tripping it.)
                            self._kill_wedged(
                                shard,
                                "heartbeat_stale",
                                age_sec=round(snapshot["age_sec"], 3),
                            )
                if shard.status == "starting" and shard.ready():
                    shard.status = "live"
                    shard.live_since = now
                    self._rebuild_ring()
                    log.info(
                        "fleet.shard_admitted",
                        shard=shard.name,
                        restarts=shard.restarts,
                    )
            if shard.status == "dead":
                if shard.needs_handoff:
                    if len(self._ring) == 0:
                        # No survivor can take the orphans, and waiting
                        # for one would deadlock a fully-dead fleet
                        # (respawn is gated on the handoff).  Respawn
                        # first instead: the restarted daemon's own
                        # journal replay requeues its non-terminal
                        # jobs, so nothing is lost by eliding the move.
                        log.warning(
                            "fleet.handoff_elided_empty_ring",
                            shard=shard.name,
                        )
                        shard.needs_handoff = False
                    else:
                        self._handoff(shard)
                if not shard.needs_handoff and now >= shard.next_restart_at:
                    shard.restarts += 1
                    self._spawn(shard)
        self._suspect.clear()

    def _kill_wedged(self, shard: ShardHandle, reason: str, **fields) -> None:
        """SIGKILL a wedged-but-alive shard so normal death handling runs.

        A hung daemon keeps its ring keys while answering nothing, so
        every request it owns is rejected until something removes it.
        Escalating to a kill converts "wedged" into the failure mode the
        fleet already handles — handoff plus respawn — and the kill also
        drops the shard's flock, so :meth:`_handoff` can take the lock.
        """
        log.warning(
            "fleet.shard_wedged", shard=shard.name, reason=reason, **fields
        )
        metrics().counter("serve.fleet.shard_wedged").inc()
        process = shard.process
        if process is not None and process.poll() is None:
            process.kill()
            try:
                process.wait(timeout=5)
            except subprocess.TimeoutExpired:  # pragma: no cover
                pass
        self._mark_dead(shard)

    def _mark_dead(self, shard: ShardHandle) -> None:
        shard.last_exit = (
            shard.process.returncode if shard.process is not None else None
        )
        shard.status = "dead"
        shard.needs_handoff = True
        backoff = min(
            self.config.restart_backoff_sec * (2 ** min(shard.restarts, 5)),
            self.config.restart_backoff_max_sec,
        )
        shard.next_restart_at = time.monotonic() + backoff
        self._rebuild_ring()
        metrics().counter("serve.fleet.shard_deaths").inc()
        log.warning(
            "fleet.shard_dead",
            shard=shard.name,
            exit=shard.last_exit,
            restart_in_sec=round(backoff, 3),
        )

    def _handoff(self, shard: ShardHandle) -> None:
        """Move the dead shard's unfinished jobs to the survivors.

        Journal-first under the dead shard's own state lock: if the lock
        is unavailable the daemon is somehow still alive (or already
        restarted) and the handoff is skipped — exactly the safe call in
        both cases.
        """
        if len(self._ring) == 0:
            return  # nowhere to move jobs; retry once a shard is live
        lock = ProcessLock(shard.state_dir / "serve.lock")
        if not lock.acquire():
            log.warning("fleet.handoff_lock_busy", shard=shard.name)
            shard.needs_handoff = False  # holder is a live daemon
            return
        moved = 0
        try:
            journal = JobJournal(
                shard.state_dir / "journal", fsync=self.config.fsync
            )
            try:
                for job in journal.state.to_requeue():
                    job_id = job.request["job_id"]
                    target = self._ring.owner(job_id)
                    journal.moved(job_id, target)
                    self._pending_handoffs[job_id] = {
                        **job.request, "requeue": True
                    }
                    moved += 1
            finally:
                journal.close()
        finally:
            lock.release()
        shard.needs_handoff = False
        if moved:
            metrics().counter("serve.fleet.jobs_moved").inc(moved)
        log.info("fleet.handoff", shard=shard.name, moved=moved)

    async def _pump_handoffs(self) -> None:
        """Resubmit pending handoffs to their current ring owners."""
        if not self._pending_handoffs:
            return
        still: Dict[str, Dict[str, Any]] = {}
        for job_id, request in list(self._pending_handoffs.items()):
            response = await self.router.route(request)
            status = response.get("status")
            if status in ("accepted", "duplicate"):
                metrics().counter("serve.fleet.jobs_requeued").inc()
                log.info(
                    "fleet.job_requeued",
                    job_id=job_id,
                    shard=response.get("shard"),
                    status=status,
                )
            elif str(response.get("reason", "")).startswith("invalid"):
                self._lose_handoff(
                    job_id, request, reason="invalid", response=response
                )
            else:  # overloaded / circuit open / no live shard: retry
                still[job_id] = request
        self._pending_handoffs = still

    def _lose_handoff(
        self, job_id: str, request: Dict[str, Any], **detail: Any
    ) -> None:
        """Record a handed-off job the fleet could not deliver anywhere.

        Its only other trace is the ``moved`` tombstone on the dead
        shard, so a silent drop would contradict the zero-lost-jobs
        invariant without anyone noticing; keeping the verbatim request
        here (surfaced via ``health``/``stats``) lets operators detect
        the loss and replay the job.
        """
        self._lost_handoffs[job_id] = {"request": dict(request), **detail}
        metrics().counter("serve.fleet.jobs_lost").inc()
        log.error("fleet.handoff_lost", job_id=job_id, **detail)

    async def _supervise(self) -> None:
        while not self._stop.is_set():
            try:
                self._sweep()
                await self._pump_handoffs()
            except Exception as exc:  # supervision must never die
                log.error("fleet.supervise_error", error=repr(exc))
            try:
                await asyncio.wait_for(
                    self._stop.wait(), timeout=self.config.supervise_interval_sec
                )
            except asyncio.TimeoutError:
                pass

    # ------------------------------------------------------------------
    # Control verbs (router-side ``stats`` / ``health``)
    # ------------------------------------------------------------------
    def _fleet_section(self) -> Dict[str, Any]:
        return {
            "shards": len(self.shards),
            "live": sum(1 for s in self.shards if s.status == "live"),
            "dead": [s.name for s in self.shards if s.status == "dead"],
            "restarts": {
                s.name: s.restarts for s in self.shards if s.restarts
            },
            "pending_handoffs": len(self._pending_handoffs),
            "lost_handoffs": len(self._lost_handoffs),
            "lost_handoff_jobs": sorted(self._lost_handoffs),
            "uptime_sec": round(time.time() - self._started_at, 3),
        }

    def _control(self, verb: str) -> Dict[str, Any]:
        if verb == "health":
            section = self._fleet_section()
            section["shard_status"] = {
                s.name: {
                    "status": s.status,
                    "pid": s.process.pid if s.process else None,
                    "restarts": s.restarts,
                }
                for s in self.shards
            }
            return {"status": "ok", "health": section}
        if verb == "stats":
            return {"status": "ok", "stats": self._merged_stats()}
        return {"status": "error", "error": f"unknown verb: {verb}"}

    def _merged_stats(self) -> Dict[str, Any]:
        """Fleet roll-up from the shards' on-disk live snapshots.

        Reading the flusher-published snapshots (instead of querying
        every shard socket inline) keeps the stats verb non-blocking and
        gives the same numbers ``fleet_status`` reports offline.
        """
        merged: Dict[str, Any] = {
            "queue_depth": 0,
            "in_flight": {},
            "counts": {},
            "shards": {},
        }
        for shard in self.shards:
            snapshot = read_live_snapshot(shard.state_dir)
            merged["shards"][shard.name] = {
                "status": shard.status,
                "snapshot_age_sec": (
                    snapshot["age_sec"] if snapshot else None
                ),
            }
            if snapshot is None:
                continue
            service = snapshot.get("service") or {}
            merged["queue_depth"] += service.get("queue_depth") or 0
            for key, value in (service.get("in_flight") or {}).items():
                merged["in_flight"][key] = (
                    merged["in_flight"].get(key, 0) + value
                )
            for key, value in (service.get("counts") or {}).items():
                if isinstance(value, (int, float)):
                    merged["counts"][key] = merged["counts"].get(key, 0) + value
        merged["fleet"] = self._fleet_section()
        return merged

    # ------------------------------------------------------------------
    # Main loop / drain
    # ------------------------------------------------------------------
    def run(self) -> int:
        """Start the fleet and block until shutdown; returns exit code."""
        self.start()
        return asyncio.run(self._main())

    def _request_stop(self) -> None:
        log.info("fleet.stop_requested")
        self._stop.set()

    async def _main(self) -> int:
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(signum, self._request_stop)
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                pass
        await self.router.start()
        # Publish the actually-bound public endpoint (a ``tcp:...:0``
        # bind's real port is only known post-listen), atomically, and
        # *before* the pid marker so pid-present implies endpoint-known.
        endpoint_path = self.state_dir / FLEET_ENDPOINT
        tmp = endpoint_path.with_suffix(".endpoint.tmp")
        tmp.write_text(self.router.bound.describe() + "\n")
        os.replace(tmp, endpoint_path)
        # Readiness marker: handlers installed + router listening, so a
        # fleet that exposes its pid is a fleet that will drain cleanly.
        (self.state_dir / FLEET_PID).write_text(str(os.getpid()))
        supervisor = asyncio.create_task(self._supervise())
        try:
            if self.config.max_runtime_sec is not None:
                try:
                    await asyncio.wait_for(
                        self._stop.wait(), timeout=self.config.max_runtime_sec
                    )
                except asyncio.TimeoutError:
                    log.warning("fleet.max_runtime_reached")
            else:
                await self._stop.wait()
        finally:
            self._stop.set()
            supervisor.cancel()
            try:
                await supervisor
            except asyncio.CancelledError:
                pass
            await self._drain()
        return 0

    async def _drain(self) -> None:
        """Stop intake, SIGTERM every shard, wait for their drains."""
        log.info("fleet.draining")
        await self.router.stop()
        for shard in self.shards:
            if shard.process_alive():
                shard.process.send_signal(signal.SIGTERM)
        deadline = time.monotonic() + self.config.drain_timeout_sec + 10.0
        while time.monotonic() < deadline:
            if all(not s.process_alive() for s in self.shards):
                break
            await asyncio.sleep(0.1)
        for shard in self.shards:
            if shard.process_alive():  # pragma: no cover - last resort
                log.warning("fleet.shard_kill", shard=shard.name)
                shard.process.kill()
                shard.process.wait(timeout=5)
        (self.state_dir / FLEET_PID).unlink(missing_ok=True)
        (self.state_dir / FLEET_ENDPOINT).unlink(missing_ok=True)
        log.info(
            "fleet.drained",
            pending_handoffs=len(self._pending_handoffs),
        )


def fleet_forever(config: FleetConfig) -> int:
    """Run a fleet until SIGTERM; the ``repro serve fleet`` entrypoint."""
    return FleetManager(config).run()


# ----------------------------------------------------------------------
# Offline fleet status (works on a live fleet's state dir and a dead one's)
# ----------------------------------------------------------------------
def find_shard_dirs(state_dir: PathLike) -> List[Path]:
    state_dir = Path(state_dir)
    return sorted(
        p
        for p in state_dir.glob("shard-*")
        if p.is_dir() and (p / "journal").exists()
    )


def is_fleet_state(state_dir: PathLike) -> bool:
    """Does this state dir belong to a fleet (vs a single daemon)?"""
    state_dir = Path(state_dir)
    return (state_dir / FLEET_META).exists() or bool(find_shard_dirs(state_dir))


def fleet_status(state_dir: PathLike) -> Dict[str, Any]:
    """Cross-shard roll-up: journals, live snapshots, and fleet counts.

    Per-shard sections are exactly :func:`repro.serve.client.serve_status`
    of each shard dir; the fleet ``counts``/``jobs`` dedupe job ids
    across shards by :data:`STATUS_PRECEDENCE` (so a job handed off and
    completed elsewhere counts once, as completed); ``rollup.counters``
    merges the shard metric snapshots via
    :func:`repro.obs.summarize.merge_metrics_files`, which makes fleet
    totals equal the sum of the per-shard snapshots by construction.
    """
    state_dir = Path(state_dir)
    shard_dirs = find_shard_dirs(state_dir)
    rank = {status: i for i, status in enumerate(STATUS_PRECEDENCE)}

    router_pid: Optional[int] = None
    router_alive = False
    try:
        router_pid = int((state_dir / FLEET_PID).read_text().strip())
    except (FileNotFoundError, ValueError, OSError):
        pass
    if router_pid is not None:
        try:
            os.kill(router_pid, 0)
            router_alive = True
        except PermissionError:  # exists, but owned by someone else
            router_alive = True
        except OSError:
            pass

    shards: List[Dict[str, Any]] = []
    best: Dict[str, Dict[str, Any]] = {}
    order: List[str] = []
    completions: Dict[str, int] = {}
    for shard_dir in shard_dirs:
        status = serve_status(shard_dir)
        status["shard"] = shard_dir.name
        shards.append(status)
        for job in status["jobs"]:
            job_id = job["job_id"]
            completions[job_id] = (
                completions.get(job_id, 0) + job["completions"]
            )
            row = {**job, "shard": shard_dir.name}
            if job_id not in best:
                best[job_id] = row
                order.append(job_id)
            elif rank.get(job["status"], len(rank)) < rank.get(
                best[job_id]["status"], len(rank)
            ):
                best[job_id] = row

    counts: Dict[str, int] = {
        "total": len(best),
        "pending": 0,
        "leased": 0,
        "completed": 0,
        "failed": 0,
        "rejected": 0,
    }
    jobs: List[Dict[str, Any]] = []
    for job_id in order:
        row = dict(best[job_id])
        row["completions"] = completions[job_id]
        counts[row["status"]] = counts.get(row["status"], 0) + 1
        jobs.append(row)

    snapshot_paths = [
        d / "obs" / "metrics.json"
        for d in shard_dirs
        if (d / "obs" / "metrics.json").exists()
    ]
    rollup: Dict[str, Any] = {"inputs": len(snapshot_paths)}
    if snapshot_paths:
        merged = merge_metrics_files(snapshot_paths)
        rollup["counters"] = merged.get("counters", {})
        rollup["gauges"] = merged.get("gauges", {})

    return {
        "state_dir": str(state_dir),
        "fleet": True,
        "router": {"pid": router_pid, "alive": router_alive},
        "shards": shards,
        "counts": counts,
        "jobs": jobs,
        "rollup": rollup,
    }


def format_fleet_status(status: Dict[str, Any]) -> str:
    router = status.get("router") or {}
    router_state = "up" if router.get("alive") else "down"
    lines = [
        f"fleet state {status['state_dir']} — router {router_state}"
        + (f" (pid {router['pid']})" if router.get("pid") else ""),
        "  fleet: " + " ".join(f"{k}={v}" for k, v in status["counts"].items()),
    ]
    for shard in status["shards"]:
        counts = shard["counts"]
        daemon = shard.get("daemon", "unknown")
        line = (
            f"  {shard['shard']}: {daemon:<5} "
            + " ".join(f"{k}={v}" for k, v in counts.items())
        )
        live = shard.get("live")
        if live and live.get("snapshot_age_sec") is not None:
            line += f" snapshot_age={live['snapshot_age_sec']:.1f}s"
        lines.append(line)
    counters = (status.get("rollup") or {}).get("counters") or {}
    serve_counters = {
        k: v for k, v in sorted(counters.items()) if k.startswith("serve.")
    }
    if serve_counters:
        lines.append(
            "  rollup: "
            + " ".join(f"{k}={v:g}" for k, v in serve_counters.items())
        )
    double = [
        j["job_id"] for j in status["jobs"] if j["completions"] > 1
    ]
    if double:
        lines.append(f"  DOUBLE-COMPLETED jobs: {double}")
    return "\n".join(lines)
