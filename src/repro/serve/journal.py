"""Durable append-only job journal (the serve daemon's WAL).

Every admission decision and lease transition is one fsync'd JSONL
record, so the journal is the single source of truth for "what did the
service promise and what actually happened".  After a SIGKILL the
daemon replays the journal and requeues every job whose lease was
orphaned; a job with a ``completed`` record is never run again, which
is what makes the service's contract *at-least-once execution with
exactly-once completion accounting* (effects are idempotent via
content-hashed job ids and the profile cache).

Record grammar (``v`` 2), one JSON object per line::

    {"v":2,"type":"submitted","job_id":...,"request":{...},"ts":...,"crc":...}
    {"v":2,"type":"leased",   "job_id":...,"lease":n,"pid":...,"crc":...}
    {"v":2,"type":"completed","job_id":...,"duration_sec":...,"cache_hit":...}
    {"v":2,"type":"failed",   "job_id":...,"error":{...}}
    {"v":2,"type":"rejected", "job_id":...,"reason":...,"retry_after_sec":...}
    {"v":2,"type":"requeued", "job_id":...,"reason":...}
    {"v":2,"type":"job", ...}         # compaction snapshot of one job

Every record since ``v`` 2 carries a ``crc`` field: the CRC32 of the
record's canonical JSON (sorted keys, compact separators, ``crc``
itself excluded) — see :func:`seal_record` / :func:`record_crc_ok`.
``v`` 1 records (no ``crc``) replay unverified for backward compat; a
record whose checksum verifies is applied even when its version is
newer than this writer knows (forward compat: preserved, not dropped).

Durability model: the active segment is ``wal.jsonl``; when it exceeds
``max_segment_bytes`` it rotates to ``wal-<seq>.jsonl``, and once
``compact_after_segments`` rotated segments pile up the whole history
is compacted into one snapshot (``job`` records) written atomically
(tmp + fsync + ``os.replace``).

Replay distinguishes two kinds of bad line (DESIGN.md §15):

* **Torn tail** — an unparsable *final* line of the *final* segment
  with no trailing newline: the expected artifact of a SIGKILL landing
  mid-append.  Counted in ``torn_records``, truncated away on open,
  and otherwise benign.
* **Mid-file corruption** — an undecodable line anywhere else, or a
  parseable record whose CRC does not match: bit-rot or tampering.
  Counted in ``corrupt_records``, attributed to the record's claimed
  job (``suspect_jobs``) when one is legible, and surfaced by the
  writer as a quarantined copy of the segment plus the
  ``serve.journal.corrupt_records`` metric.  The corrupt record is
  *not* applied — so a bit-rotted ``completed`` record regresses its
  job to the last good (non-terminal) state and the daemon re-verifies
  or re-runs it rather than trusting a checksum-failed completion.

Fleet handoff rides the same grammar: when a shard dies, the router
appends ``rejected`` records with reason ``moved:<target-shard>`` to the
dead shard's journal before resubmitting the jobs elsewhere, so a
restart of the dead shard replays them as terminal and never re-runs a
job another shard now owns; unlike ordinary rejections, a moved job
answers ``duplicate`` if resubmitted to this shard (see DESIGN.md §13).

Usage — write a journal, crash, replay it::

    from repro.serve.journal import JobJournal

    journal = JobJournal("state/journal", fsync=False)
    journal.submitted({"job_id": "j1", "kind": "chaos", "params": {}})
    journal.leased("j1", lease=1, pid=1234)
    # ... SIGKILL here loses nothing already appended ...
    state = JobJournal.read_state("state/journal")
    assert [j.request["job_id"] for j in state.to_requeue()] == ["j1"]
    journal.completed("j1", duration_sec=0.2)
    assert journal.state.jobs["j1"].status == "completed"
    journal.close()
"""

from __future__ import annotations

import json
import os
import shutil
import threading
import time
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Set

from repro import obs
from repro.trace.io import PathLike

_log = obs.get_logger("repro.serve")

JOURNAL_VERSION = 2

#: Subdirectory (of the journal root) where corrupt segments are copied
#: for post-mortem before replay continues without their bad records.
QUARANTINE_DIR = "quarantine"


def _canonical_crc(record: dict) -> int:
    """CRC32 over the canonical JSON of ``record`` minus its ``crc`` key.

    Canonical form (sorted keys, compact separators, ascii escapes) is
    what makes the checksum recomputable from a *parsed* record — the
    original byte layout on disk does not matter.
    """
    body = {k: v for k, v in record.items() if k != "crc"}
    payload = json.dumps(
        body, sort_keys=True, separators=(",", ":"), ensure_ascii=True
    )
    return zlib.crc32(payload.encode("utf-8")) & 0xFFFFFFFF


def seal_record(record: dict) -> dict:
    """Return ``record`` with its integrity ``crc`` field (re)computed."""
    sealed = {k: v for k, v in record.items() if k != "crc"}
    sealed["crc"] = _canonical_crc(sealed)
    return sealed


def record_crc_ok(record: dict) -> bool:
    """True iff ``record`` carries a ``crc`` that matches its content."""
    crc = record.get("crc")
    return isinstance(crc, int) and crc == _canonical_crc(record)

#: States a job can be in after replay.  ``pending`` and ``leased`` are
#: the non-terminal ones — exactly the set :meth:`JournalState.to_requeue`
#: hands back to the daemon after a crash.
TERMINAL = ("completed", "failed", "rejected")

#: Rejection-reason prefix marking a job handed off to another shard.
#: ``rejected`` is terminal on replay, which is exactly what handoff
#: needs: the dead shard, once restarted, will never requeue the job.
MOVED_PREFIX = "moved:"


@dataclass
class JobRecord:
    """Replayed state of one job."""

    request: dict
    status: str = "pending"  # pending | leased | completed | failed | rejected
    attempts: int = 0  # number of leases granted
    completions: int = 0  # completed records seen (must end up <= 1)
    duration_sec: float = 0.0
    cache_hit: bool = False
    error: Optional[dict] = None
    reason: Optional[str] = None
    order: int = 0

    @property
    def terminal(self) -> bool:
        return self.status in TERMINAL

    @property
    def moved_target(self) -> Optional[str]:
        """The shard this job was handed off to, if it was moved."""
        if self.status == "rejected" and (self.reason or "").startswith(
            MOVED_PREFIX
        ):
            return self.reason[len(MOVED_PREFIX):]
        return None

    def snapshot(self) -> dict:
        """The compaction record that reconstructs this state exactly."""
        return {
            "v": JOURNAL_VERSION,
            "type": "job",
            "job_id": self.request["job_id"],
            "request": self.request,
            "status": self.status,
            "attempts": self.attempts,
            "completions": self.completions,
            "duration_sec": self.duration_sec,
            "cache_hit": self.cache_hit,
            "error": self.error,
            "reason": self.reason,
        }

    def manifest_row(self) -> dict:
        """This job as a run-manifest row (status must be ok|failed)."""
        if self.status == "completed":
            status, error = "ok", None
        elif self.status == "failed":
            status, error = "failed", self.error
        elif self.status == "rejected":
            status = "failed"
            error = {
                "error_type": "Rejected",
                "message": self.reason or "rejected",
                "traceback": "",
            }
        else:  # pending/leased at drain time: recoverable, not lost
            status = "failed"
            error = {
                "error_type": "Drained",
                "message": "service drained before this job ran; "
                "it remains pending in the journal",
                "traceback": "",
            }
        return {
            "job_id": self.request["job_id"],
            "kind": self.request.get("kind"),
            "label": self.request.get("label"),
            "status": status,
            "attempts": self.attempts,
            "duration_sec": round(self.duration_sec, 6),
            "cache_hit": self.cache_hit,
            "resumed": False,
            "error": error,
        }


@dataclass
class JournalState:
    """Everything replay can tell us about the journal's jobs."""

    jobs: Dict[str, JobRecord] = field(default_factory=dict)
    torn_records: int = 0
    duplicate_submits: int = 0
    #: Mid-file corruption: undecodable non-tail lines plus records whose
    #: CRC failed verification.  Each one is a record replay *refused* to
    #: apply (unlike torn_records, which are expected SIGKILL artifacts).
    corrupt_records: int = 0
    #: Segment file names in which corruption was seen, replay order.
    corrupt_segments: List[str] = field(default_factory=list)
    #: Jobs named by a corrupt record (when the job_id was legible).
    #: Their replayed state may be missing a transition, so the daemon
    #: re-verifies them on recovery instead of trusting it — in
    #: particular a "completed" suspect is only believed if its result
    #: artifact's checksum holds (see ServeDaemon._recover).
    suspect_jobs: Set[str] = field(default_factory=set)

    def in_order(self) -> List[JobRecord]:
        return sorted(self.jobs.values(), key=lambda j: j.order)

    def counts(self) -> Dict[str, int]:
        out: Dict[str, int] = {
            "total": len(self.jobs),
            "pending": 0,
            "leased": 0,
            "completed": 0,
            "failed": 0,
            "rejected": 0,
        }
        for job in self.jobs.values():
            out[job.status] = out.get(job.status, 0) + 1
        return out

    def to_requeue(self) -> List[JobRecord]:
        """Non-terminal jobs, in submit order — the crash-recovery set."""
        return [j for j in self.in_order() if not j.terminal]

    def moved_out(self) -> Dict[str, JobRecord]:
        """Jobs this journal handed off to another shard, by job id.

        The fleet's start-up recovery scan cross-references these
        against every *other* shard's journal: a moved job that never
        arrived anywhere (the router died between the ``moved`` append
        and the resubmission) is resubmitted to its current owner.
        """
        return {
            job_id: job
            for job_id, job in self.jobs.items()
            if job.moved_target is not None
        }

    def apply(self, record: dict) -> None:
        rtype = record.get("type")
        job_id = record.get("job_id")
        if not job_id:
            return
        if rtype == "job":  # compaction snapshot: absolute, replaces
            self.jobs[job_id] = JobRecord(
                request=record.get("request") or {"job_id": job_id},
                status=record.get("status", "pending"),
                attempts=int(record.get("attempts", 0)),
                completions=int(record.get("completions", 0)),
                duration_sec=float(record.get("duration_sec", 0.0)),
                cache_hit=bool(record.get("cache_hit")),
                error=record.get("error"),
                reason=record.get("reason"),
                order=len(self.jobs),
            )
            return
        if rtype == "submitted":
            if job_id in self.jobs:
                self.duplicate_submits += 1
                return
            self.jobs[job_id] = JobRecord(
                request=record.get("request") or {"job_id": job_id},
                order=len(self.jobs),
            )
            return
        job = self.jobs.get(job_id)
        if job is None:
            # A transition without a submit (lost to compaction bug or
            # manual edit): synthesise a stub so accounting stays total.
            job = JobRecord(request={"job_id": job_id}, order=len(self.jobs))
            self.jobs[job_id] = job
        if rtype == "leased":
            job.attempts += 1
            if not job.terminal:
                job.status = "leased"
        elif rtype == "completed":
            job.status = "completed"
            job.completions += 1
            job.duration_sec = float(record.get("duration_sec", 0.0))
            job.cache_hit = bool(record.get("cache_hit"))
        elif rtype == "failed":
            job.status = "failed"
            job.error = record.get("error")
        elif rtype == "rejected":
            job.status = "rejected"
            job.reason = record.get("reason")
        elif rtype == "requeued":
            # Reverts a lease (crash/drain requeue) and also a
            # *rejection* (a shed or circuit-opened job being
            # resubmitted once there is room again); a job that
            # actually ran to completed/failed is immutable — with one
            # exception: a ``result_corrupt*`` requeue is read-repair
            # (DESIGN.md §15) voiding a completion whose result artifact
            # failed its checksum, so the re-execution that follows does
            # not count as a double completion.
            reason = record.get("reason") or ""
            if job.status == "completed" and reason.startswith("result_corrupt"):
                job.status = "pending"
                job.reason = None
                job.completions = max(job.completions - 1, 0)
            elif job.status not in ("completed", "failed"):
                job.status = "pending"
                job.reason = None


class JobJournal:
    """Writer + replayer for one journal directory.

    The daemon owns exactly one instance (guarded by its state-dir
    lock); read-only observers (``repro serve status``, the chaos
    campaign) use :meth:`read_state` and never touch the files.

    Appends arrive from more than one thread — socket-intake threads
    journal admissions while the main loop journals lease transitions —
    so every write path (append/rotate/compact/flush/close) serialises
    on one internal lock: records never interleave mid-line, and a
    rotation triggered by one thread can't close the handle under
    another thread's append.
    """

    ACTIVE = "wal.jsonl"

    def __init__(
        self,
        root: PathLike,
        fsync: bool = True,
        max_segment_bytes: int = 1 << 20,
        compact_after_segments: int = 4,
    ):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.fsync = fsync
        self.max_segment_bytes = max_segment_bytes
        self.compact_after_segments = compact_after_segments
        self.state = JournalState()
        self._fh = None
        #: Wall-clock time of the most recent durable append (None until
        #: the first one); the live snapshot reports ``now - this`` as
        #: journal lag.
        self.last_append_ts: Optional[float] = None
        #: Records appended by *this* writer (not counting replay).
        self.appended_records = 0
        # Reentrant: append() -> rotate() -> compact() nest on the
        # same thread.
        self._lock = threading.RLock()
        self._replay_existing()
        self._open_active()

    # ------------------------------------------------------------------
    # Segments
    # ------------------------------------------------------------------
    @property
    def active_path(self) -> Path:
        return self.root / self.ACTIVE

    def _rotated(self) -> List[Path]:
        return sorted(self.root.glob("wal-*.jsonl"))

    def segments(self) -> List[Path]:
        paths = self._rotated()
        if self.active_path.exists():
            paths.append(self.active_path)
        return paths

    # ------------------------------------------------------------------
    # Replay
    # ------------------------------------------------------------------
    @staticmethod
    def _replay_file(
        path: Path, state: JournalState, final_segment: bool = False
    ) -> None:
        """Replay one segment, classifying bad lines torn vs corrupt.

        Only an unparsable *final* line of the *final* segment that is
        missing its trailing newline is a torn tail (the artifact a
        SIGKILL mid-append is expected to leave); every other bad line —
        mid-file garbage, a complete line that fails to parse, or a
        parseable record whose CRC does not verify — is mid-file
        corruption.  Corrupt records are counted, attributed to their
        claimed job when legible, and *not* applied.
        """
        try:
            data = path.read_bytes()
        except FileNotFoundError:
            return
        text = data.decode("utf-8", errors="replace")
        lines = text.splitlines()
        last_index = -1
        for index in range(len(lines) - 1, -1, -1):
            if lines[index].strip():
                last_index = index
                break
        torn_candidate = (
            final_segment and bool(data) and not data.endswith(b"\n")
        )
        had_corruption = False

        def _bad(index: int, record: Optional[dict]) -> None:
            nonlocal had_corruption
            if torn_candidate and index == last_index:
                state.torn_records += 1
                return
            state.corrupt_records += 1
            had_corruption = True
            if record is not None:
                job_id = record.get("job_id")
                if isinstance(job_id, str) and job_id:
                    state.suspect_jobs.add(job_id)

        for index, line in enumerate(lines):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                _bad(index, None)
                continue
            if not isinstance(record, dict):
                _bad(index, None)
                continue
            if "crc" in record:
                if not record_crc_ok(record):
                    _bad(index, record)
                    continue
                # Checksum holds: apply even if the version is newer
                # than this reader (forward compat — never drop a
                # verified record).
            else:
                version = record.get("v")
                if isinstance(version, int) and version > 1:
                    # v>=2 writers always seal; a missing crc means the
                    # envelope itself was damaged.
                    _bad(index, record)
                    continue
            state.apply(record)
        if had_corruption and path.name not in state.corrupt_segments:
            state.corrupt_segments.append(path.name)

    @classmethod
    def read_state(cls, root: PathLike) -> JournalState:
        """Replay a journal directory without opening it for writing."""
        root = Path(root)
        state = JournalState()
        paths = sorted(root.glob("wal-*.jsonl"))
        active = root / cls.ACTIVE
        if active.exists():
            paths.append(active)
        for index, path in enumerate(paths):
            cls._replay_file(path, state, final_segment=index == len(paths) - 1)
        return state

    def _replay_existing(self) -> None:
        paths = self.segments()
        for index, path in enumerate(paths):
            self._replay_file(
                path, self.state, final_segment=index == len(paths) - 1
            )
        if self.state.torn_records:
            obs.metrics().counter("serve.torn_records").inc(
                self.state.torn_records
            )
            _log.warning(
                "journal.torn_records",
                count=self.state.torn_records,
                root=str(self.root),
            )
        if self.state.corrupt_records:
            quarantined = [
                str(self.quarantine_segment(self.root / name))
                for name in self.state.corrupt_segments
            ]
            obs.metrics().counter("serve.journal.corrupt_records").inc(
                self.state.corrupt_records
            )
            _log.warning(
                "journal.corrupt_records",
                count=self.state.corrupt_records,
                segments=self.state.corrupt_segments,
                suspect_jobs=sorted(self.state.suspect_jobs),
                quarantined=quarantined,
                root=str(self.root),
            )

    def quarantine_segment(self, path: Path) -> Path:
        """Copy a damaged segment into ``quarantine/`` for post-mortem.

        A *copy*, not a move: the live journal keeps rotating and
        compacting over the original (whose good records are still
        load-bearing), while the quarantined snapshot preserves the
        corrupt bytes for the operator (OPERATIONS.md §6).
        """
        qdir = self.root / QUARANTINE_DIR
        qdir.mkdir(parents=True, exist_ok=True)
        target = qdir / path.name
        suffix = 0
        while target.exists():
            suffix += 1
            target = qdir / f"{path.name}.{suffix}"
        shutil.copy2(path, target)
        return target

    def _open_active(self) -> None:
        # Truncate a torn tail (a record a SIGKILL cut mid-write) so new
        # appends never concatenate onto half a line.
        path = self.active_path
        if path.exists():
            data = path.read_bytes()
            if data and not data.endswith(b"\n"):
                cut = data.rfind(b"\n") + 1
                with open(path, "r+b") as fh:
                    fh.truncate(cut)
        self._fh = open(path, "a", encoding="utf-8")

    # ------------------------------------------------------------------
    # Append
    # ------------------------------------------------------------------
    def append(self, record: dict) -> None:
        with self._lock:
            if self._fh is None:
                raise RuntimeError("journal is closed")
            record = seal_record(
                {"v": JOURNAL_VERSION, "ts": round(time.time(), 3), **record}
            )
            # Write-ahead for real: the in-memory state is updated only
            # once the record is durably on disk, so an OSError (disk
            # full, I/O fault) leaves memory consistent with the WAL
            # and the caller free to shed instead of diverging.
            self._fh.write(json.dumps(record, separators=(",", ":")) + "\n")
            self._fh.flush()
            if self.fsync:
                os.fsync(self._fh.fileno())
            self.state.apply(record)
            self.last_append_ts = time.time()
            self.appended_records += 1
            if self._fh.tell() >= self.max_segment_bytes:
                self.rotate()

    # Typed appenders -- the daemon's vocabulary.
    def submitted(self, request: dict) -> None:
        self.append(
            {"type": "submitted", "job_id": request["job_id"], "request": request}
        )

    def leased(self, job_id: str, lease: int, pid: Optional[int] = None) -> None:
        self.append(
            {"type": "leased", "job_id": job_id, "lease": lease, "pid": pid}
        )

    def completed(
        self, job_id: str, duration_sec: float = 0.0, cache_hit: bool = False
    ) -> None:
        self.append(
            {
                "type": "completed",
                "job_id": job_id,
                "duration_sec": round(duration_sec, 6),
                "cache_hit": cache_hit,
            }
        )

    def failed(self, job_id: str, error: dict) -> None:
        self.append({"type": "failed", "job_id": job_id, "error": error})

    def rejected(
        self,
        job_id: str,
        reason: str,
        retry_after_sec: Optional[float] = None,
    ) -> None:
        self.append(
            {
                "type": "rejected",
                "job_id": job_id,
                "reason": reason,
                "retry_after_sec": retry_after_sec,
            }
        )

    def requeued(self, job_id: str, reason: str) -> None:
        self.append({"type": "requeued", "job_id": job_id, "reason": reason})

    def moved(self, job_id: str, target: str) -> None:
        """Hand ``job_id`` off to ``target`` (a terminal record here).

        Appended to a *dead* shard's journal by the fleet router while
        it holds that shard's state-dir lock; ordering matters — the
        move is journaled before the job is resubmitted elsewhere, so a
        crash between the two steps leaves a journal trail from which
        the handoff can be completed (never a duplicate execution).
        """
        self.append(
            {"type": "rejected", "job_id": job_id, "reason": f"{MOVED_PREFIX}{target}"}
        )

    # ------------------------------------------------------------------
    # Rotation / compaction
    # ------------------------------------------------------------------
    def rotate(self) -> Path:
        """Seal the active segment and start a new one."""
        with self._lock:
            self._fh.close()
            seq = len(self._rotated()) + 1
            target = self.root / f"wal-{seq:06d}.jsonl"
            while target.exists():  # pragma: no cover - defensive
                seq += 1
                target = self.root / f"wal-{seq:06d}.jsonl"
            os.replace(self.active_path, target)
            self._fh = open(self.active_path, "a", encoding="utf-8")
            _log.info("journal.rotated", segment=target.name)
            if len(self._rotated()) >= self.compact_after_segments:
                self.compact()
            return target

    def compact(self) -> None:
        """Fold the whole history into one snapshot segment.

        The snapshot is written to a tmp file, fsync'd, and atomically
        swapped in as the new active segment before the old segments are
        removed — a crash at any point leaves a replayable journal
        (``job`` records are absolute, so replaying stale segments
        before the snapshot is harmless).
        """
        with self._lock:
            self._fh.close()
            tmp = self.root / f"{self.ACTIVE}.tmp.{os.getpid()}"
            with open(tmp, "w", encoding="utf-8") as fh:
                for job in self.state.in_order():
                    fh.write(
                        json.dumps(
                            seal_record(job.snapshot()), separators=(",", ":")
                        )
                        + "\n"
                    )
                fh.flush()
                os.fsync(fh.fileno())
            old = self._rotated()
            os.replace(tmp, self.active_path)
            for path in old:
                path.unlink(missing_ok=True)
            self._fh = open(self.active_path, "a", encoding="utf-8")
        obs.metrics().counter("serve.compactions").inc()
        _log.info(
            "journal.compacted", jobs=len(self.state.jobs), segments=len(old)
        )

    # ------------------------------------------------------------------
    def reopen(self) -> None:
        """Drop and reopen the write handle on the active segment.

        A failed flush (disk full, I/O error) can leave part of a
        record in the userspace buffer — or part of its bytes on disk.
        Reopening discards the buffer and truncates any torn tail, so
        the next append starts on a clean line.  The daemon calls this
        when its disk-full probe clears.
        """
        with self._lock:
            if self._fh is not None:
                try:
                    self._fh.close()
                except OSError:
                    pass
            self._fh = None
            self._open_active()

    def flush(self) -> None:
        with self._lock:
            if self._fh is not None:
                self._fh.flush()
                if self.fsync:
                    os.fsync(self._fh.fileno())

    def close(self) -> None:
        with self._lock:
            if self._fh is not None:
                self.flush()
                self._fh.close()
                self._fh = None
