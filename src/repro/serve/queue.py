"""Bounded admission queue with load-shedding.

The service's overload contract: when the queue is full, new work is
*rejected now* (``overloaded`` + a retry-after hint derived from the
observed service rate) rather than accepted into an ever-growing
backlog that OOMs the daemon.  Shedding is cheap and explicit; queueing
is bounded; collapsing is not an option.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Optional

from repro import obs


class AdmissionQueue:
    """FIFO of admitted-but-not-yet-leased requests, with a hard cap."""

    def __init__(self, limit: int = 64):
        if limit < 1:
            raise ValueError("queue limit must be >= 1")
        self.limit = limit
        self._items: Deque[Dict] = deque()
        #: EMA of recent job service times, fed by the daemon; drives
        #: the retry-after hint handed to shed clients.
        self.ema_service_sec = 1.0

    def __len__(self) -> int:
        return len(self._items)

    @property
    def full(self) -> bool:
        return len(self._items) >= self.limit

    def retry_after_hint(self, workers: int) -> float:
        """Seconds until a shed client plausibly finds room: the time
        for the current backlog to drain through ``workers`` slots."""
        backlog = len(self._items) + 1
        return round(
            max(1.0, backlog * self.ema_service_sec / max(1, workers)), 1
        )

    def observe_service_time(self, duration_sec: float, alpha: float = 0.3) -> None:
        if duration_sec > 0:
            self.ema_service_sec += alpha * (duration_sec - self.ema_service_sec)

    def push(
        self, request: Dict, front: bool = False, force: bool = False
    ) -> bool:
        """Enqueue; False (and nothing stored) when the queue is full.

        ``force`` bypasses the cap — used only for crash-recovery
        requeues and returned leases, which were already admitted once
        and must never be dropped by the very mechanism that protects
        admission.
        """
        if self.full and not force:
            return False
        if front:
            self._items.appendleft(request)
        else:
            self._items.append(request)
        self._gauge()
        return True

    def pop(self) -> Optional[Dict]:
        if not self._items:
            return None
        request = self._items.popleft()
        self._gauge()
        return request

    def _gauge(self) -> None:
        obs.metrics().gauge("serve.queue_depth").set(len(self._items))
