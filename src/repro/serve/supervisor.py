"""Worker supervision: leases, heartbeats, deadline kills, crash backoff.

Each leased job runs in its own child process (``multiprocessing``)
that writes its outcome to ``results/<job_id>.json`` atomically and
exits 0 — even a *failed* job is a structured result written by a
healthy worker.  A worker that dies without a result file (segfault,
OOM-kill, ``os._exit``) is a **crash**; one that lives past its
deadline is **killed** by the supervisor's heartbeat sweep.

Result files are the durable half of the result plane (DESIGN.md §15):
a version-tagged CRC32 envelope ``{"v":2,"payload":{...},"crc":...}``
written tmp + fsync + ``os.replace`` + parent-dir fsync, so a finished
job's answer survives power loss and bit-rot is *detected* rather than
served.  :func:`read_result` verifies the checksum on every read; a
corrupt file is quarantined and the lease treated as crashed, which
re-runs the job through the bounded-requeue path (read-repair).

Crash handling is slot-local exponential backoff: a slot whose workers
keep dying waits ``backoff_base * 2**(n-1)`` seconds before accepting
its next lease (``supervisor.restarts`` counts every restart), so a
poisonous job class cannot hot-loop the fork path while the breaker is
still counting its way open.  Process liveness is the heartbeat —
``Process.is_alive()`` is checked every poll, which is exactly the
signal a kernel-killed worker stops emitting.

Dispatch/poll, driven by hand (the daemon's scheduler tick does the
same loop)::

    import time
    from pathlib import Path
    from repro.serve.requests import normalize_request
    from repro.serve.supervisor import Supervisor

    sup = Supervisor(workers=2, results_dir=Path("/tmp/ibox-results"))
    request = normalize_request(
        {"kind": "chaos", "params": {"fault": "sleep", "sleep_sec": 0.1}}
    )
    lease = sup.dispatch(request, lease=1)   # None when no slot is free
    assert lease is not None

    events = []
    while not events:                        # the heartbeat sweep
        time.sleep(0.05)
        events = sup.poll()
    assert events[0].outcome == "completed"  # result file written
    assert sup.free_slots() == 2             # slot released
"""

from __future__ import annotations

import json
import multiprocessing
import os
import shutil
import time
import traceback
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro import obs
from repro.serve.journal import record_crc_ok, seal_record
from repro.trace.io import PathLike

_log = obs.get_logger("repro.serve")

#: Envelope version for ``results/<job_id>.json`` files.  v2 wraps the
#: worker payload in ``{"v":2,"payload":{...},"crc":<crc32>}`` (same
#: canonical-JSON checksum as journal records); bare v1 payloads (a
#: plain dict with a ``status`` key) still read back for compat, just
#: unverifiable.
RESULT_VERSION = 2


def _write_result(path: PathLike, payload: dict) -> None:
    """Durably write a result envelope: tmp + fsync + replace + dirsync.

    Mirrors the journal snapshot discipline — after this returns, the
    envelope either exists complete and checksummed at ``path`` or the
    old content is untouched; a crash can never leave a half-written
    result in place, and the rename itself survives power loss because
    the parent directory is fsync'd too.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    try:
        envelope = seal_record({"v": RESULT_VERSION, "payload": payload})
    except TypeError:
        payload = {**payload, "value": repr(payload.get("value"))}
        envelope = seal_record({"v": RESULT_VERSION, "payload": payload})
    tmp = path.with_suffix(f".tmp.{os.getpid()}")
    with open(tmp, "w", encoding="utf-8") as fh:
        fh.write(json.dumps(envelope, separators=(",", ":")))
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)
    dir_fd = os.open(path.parent, os.O_RDONLY)
    try:
        os.fsync(dir_fd)
    finally:
        os.close(dir_fd)


def read_result(path: PathLike) -> Tuple[Optional[dict], str]:
    """Read and verify a result file: ``(payload, verdict)``.

    Verdicts: ``"valid"`` (payload returned; checksum verified for v2
    envelopes, trusted as-is for legacy bare payloads), ``"missing"``
    (no file), ``"corrupt"`` (undecodable, or the CRC did not match —
    the caller should quarantine and re-execute).
    """
    path = Path(path)
    try:
        raw = path.read_text(encoding="utf-8")
    except FileNotFoundError:
        return None, "missing"
    except UnicodeDecodeError:  # bit-rot can break the encoding itself
        return None, "corrupt"
    except OSError:
        return None, "corrupt"
    try:
        data = json.loads(raw)
    except json.JSONDecodeError:
        return None, "corrupt"
    if not isinstance(data, dict):
        return None, "corrupt"
    if "crc" in data or "payload" in data:
        payload = data.get("payload")
        if not record_crc_ok(data) or not isinstance(payload, dict):
            return None, "corrupt"
        return payload, "valid"
    if "status" in data:  # legacy v1 bare payload: no checksum to check
        return data, "valid"
    return None, "corrupt"


def quarantine_result(path: PathLike) -> Optional[Path]:
    """Move a corrupt result file aside for post-mortem; None if gone."""
    path = Path(path)
    if not path.exists():
        return None
    qdir = path.parent / "quarantine"
    qdir.mkdir(parents=True, exist_ok=True)
    target = qdir / path.name
    suffix = 0
    while target.exists():
        suffix += 1
        target = qdir / f"{path.name}.{suffix}"
    try:
        shutil.move(str(path), str(target))
    except FileNotFoundError:
        return None
    obs.metrics().counter("serve.results.quarantined").inc()
    _log.warning("result.quarantined", file=path.name, moved_to=str(target))
    return target


def _worker_entry(request: dict, result_path: str) -> None:
    """Child-process body: run the job, write the result, exit 0.

    Any exception becomes a structured ``failed`` result — only a
    process-level death (kill/OOM/``os._exit``) leaves no result file,
    which is how the supervisor tells crashes from failures.
    """
    from repro.serve.requests import request_to_spec, resolve_worker

    # A forked child inherits the parent's obs state — including locks
    # the daemon's flusher/sampler threads may have held at fork time.
    # Reset to a fresh disabled state before touching any of it.
    obs.reset()
    # It also inherits the daemon's state-dir flock fd; give that back
    # immediately, or an orphaned worker outliving a SIGKILLed daemon
    # keeps the lock held and blocks fleet handoff of the dead shard.
    from repro.runtime.locks import release_inherited_locks

    release_inherited_locks()
    started = time.perf_counter()
    try:
        spec = request_to_spec(request)
        worker = resolve_worker(spec.kind)
        value = worker(spec)
        payload = {
            "status": "ok",
            "job_id": request["job_id"],
            "value": value,
            "cache_hit": isinstance(value, dict) and bool(value.get("cache_hit")),
            "duration_sec": time.perf_counter() - started,
        }
    except BaseException as exc:  # noqa: BLE001 — capture is the contract
        payload = {
            "status": "failed",
            "job_id": request["job_id"],
            "error": {
                "error_type": type(exc).__name__,
                "message": str(exc),
                "traceback": traceback.format_exc(),
            },
            "duration_sec": time.perf_counter() - started,
        }
    _write_result(result_path, payload)


@dataclass
class Lease:
    """One running (or just-finished) worker process."""

    request: dict
    lease: int  # attempt number for this job
    process: multiprocessing.Process
    result_path: Path
    started_mono: float
    deadline_mono: Optional[float]

    @property
    def job_id(self) -> str:
        return self.request["job_id"]


@dataclass
class LeaseEvent:
    """What the poll sweep observed about one lease."""

    outcome: str  # "completed" | "failed" | "crashed" | "timeout"
    request: dict
    result: Optional[dict] = None
    exitcode: Optional[int] = None
    duration_sec: float = 0.0


@dataclass
class _Slot:
    lease: Optional[Lease] = None
    consecutive_crashes: int = 0
    available_at: float = 0.0  # monotonic; backoff gate after crashes


@dataclass
class Supervisor:
    """A fixed set of worker slots over a results directory."""

    workers: int
    results_dir: Path
    backoff_base: float = 0.5
    backoff_max: float = 30.0
    _slots: List[_Slot] = field(default_factory=list)
    _ctx: Optional[multiprocessing.context.BaseContext] = None

    def __post_init__(self):
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        self.results_dir = Path(self.results_dir)
        self.results_dir.mkdir(parents=True, exist_ok=True)
        self._slots = [_Slot() for _ in range(self.workers)]
        # fork keeps dispatch cheap where available; spawn elsewhere.
        method = "fork" if "fork" in multiprocessing.get_all_start_methods() else None
        self._ctx = multiprocessing.get_context(method)

    # ------------------------------------------------------------------
    # Capacity
    # ------------------------------------------------------------------
    def free_slots(self) -> int:
        now = time.monotonic()
        return sum(
            1
            for s in self._slots
            if s.lease is None and s.available_at <= now
        )

    @property
    def busy(self) -> int:
        return sum(1 for s in self._slots if s.lease is not None)

    def in_flight(self) -> List[Lease]:
        return [s.lease for s in self._slots if s.lease is not None]

    def result_path_for(self, job_id: str) -> Path:
        return self.results_dir / f"{job_id}.json"

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def dispatch(self, request: dict, lease: int) -> Optional[Lease]:
        """Start a worker for ``request`` in a free slot, or None."""
        now = time.monotonic()
        slot = next(
            (
                s
                for s in self._slots
                if s.lease is None and s.available_at <= now
            ),
            None,
        )
        if slot is None:
            return None
        result_path = self.result_path_for(request["job_id"])
        result_path.unlink(missing_ok=True)  # a fresh lease, a fresh result
        process = self._ctx.Process(
            target=_worker_entry,
            args=(request, str(result_path)),
            daemon=True,
        )
        process.start()
        timeout = request.get("timeout_sec")
        slot.lease = Lease(
            request=request,
            lease=lease,
            process=process,
            result_path=result_path,
            started_mono=now,
            deadline_mono=None if timeout is None else now + float(timeout),
        )
        return slot.lease

    # ------------------------------------------------------------------
    # Heartbeat / reap sweep
    # ------------------------------------------------------------------
    def poll(self) -> List[LeaseEvent]:
        """Reap finished/overdue leases; one event per resolved lease."""
        events: List[LeaseEvent] = []
        now = time.monotonic()
        for slot in self._slots:
            lease = slot.lease
            if lease is None:
                continue
            if lease.process.is_alive():
                if (
                    lease.deadline_mono is not None
                    and now >= lease.deadline_mono
                ):
                    lease.process.kill()
                    lease.process.join(timeout=5.0)
                    events.append(
                        LeaseEvent(
                            outcome="timeout",
                            request=lease.request,
                            duration_sec=now - lease.started_mono,
                        )
                    )
                    self._release(slot, crashed=False)
                continue
            # Process exited: result file decides completed/failed/crash.
            lease.process.join()
            duration = now - lease.started_mono
            result = self._read_result(lease.result_path)
            if result is None:
                obs.metrics().counter("supervisor.restarts").inc()
                # A fresh lease can't legitimately leave a corrupt file
                # (the write is atomic) — if one is there anyway the
                # disk mangled it; keep the evidence, then re-run.
                quarantine_result(lease.result_path)
                events.append(
                    LeaseEvent(
                        outcome="crashed",
                        request=lease.request,
                        exitcode=lease.process.exitcode,
                        duration_sec=duration,
                    )
                )
                self._release(slot, crashed=True)
                continue
            outcome = "completed" if result.get("status") == "ok" else "failed"
            events.append(
                LeaseEvent(
                    outcome=outcome,
                    request=lease.request,
                    result=result,
                    exitcode=lease.process.exitcode,
                    duration_sec=float(result.get("duration_sec", duration)),
                )
            )
            self._release(slot, crashed=False)
        return events

    @staticmethod
    def _read_result(path: Path) -> Optional[dict]:
        """Checksum-verified read; corrupt counts the same as missing
        (both resolve the lease as a crash, which re-runs the job)."""
        payload, verdict = read_result(path)
        if verdict == "corrupt":
            obs.metrics().counter("serve.results.corrupt").inc()
            _log.warning("result.corrupt_on_reap", file=path.name)
        return payload

    def _release(self, slot: _Slot, crashed: bool) -> None:
        lease = slot.lease
        slot.lease = None
        if not crashed:
            slot.consecutive_crashes = 0
            slot.available_at = 0.0
            return
        slot.consecutive_crashes += 1
        delay = min(
            self.backoff_max,
            self.backoff_base * (2 ** (slot.consecutive_crashes - 1)),
        )
        slot.available_at = time.monotonic() + delay
        _log.warning(
            "supervisor.worker_crashed",
            job_id=lease.job_id if lease else None,
            exitcode=lease.process.exitcode if lease else None,
            restart_backoff_sec=round(delay, 3),
            consecutive_crashes=slot.consecutive_crashes,
        )

    # ------------------------------------------------------------------
    # Shutdown
    # ------------------------------------------------------------------
    def kill_all(self) -> List[Lease]:
        """Kill every in-flight worker (drain timeout); returns leases."""
        killed: List[Lease] = []
        for slot in self._slots:
            if slot.lease is None:
                continue
            if slot.lease.process.is_alive():
                slot.lease.process.kill()
            slot.lease.process.join(timeout=5.0)
            killed.append(slot.lease)
            slot.lease = None
        return killed
