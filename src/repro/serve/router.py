"""Fleet routing: a consistent-hash ring plus an async intake endpoint.

Two pieces, deliberately separable:

* :class:`HashRing` — pure data structure.  Hashes each shard name onto
  the ring at ``replicas`` virtual points (md5, no seed dependence) and
  assigns every ``job_id`` to the first shard point clockwise from the
  id's own hash.  The property the fleet leans on: removing a member
  only remaps the keys that member owned — every other key keeps its
  owner, so a shard death never migrates jobs between *surviving*
  shards.

* :class:`FleetRouter` — the asyncio framed-JSONL front end (unix
  socket *or* ``tcp:<host>:<port>``, DESIGN.md §14) that replaces the
  single daemon's polling spool walk.  Each inbound frame is either a
  control verb (``{"verb": "stats"}``) answered locally, or a job
  request: the router normalises it (so the ``job_id`` used for
  routing is exactly the one the shard will journal), asks its
  ``owner_of`` callback for the owning live shard, and forwards the
  frame over that shard's own endpoint, relaying the shard's
  accepted/duplicate/rejected response back annotated with
  ``"shard": <name>``.

Usage — the ring alone is handy for tests and capacity math::

    from repro.serve.router import HashRing

    ring = HashRing(["shard-0", "shard-1", "shard-2"])
    owner = ring.owner("job-abc123")          # deterministic
    survivors = ring.without("shard-1")       # shard-1 dies
    assert [k for k in ("a", "b", "c")
            if ring.owner(k) != "shard-1"
            and survivors.owner(k) != ring.owner(k)] == []

The router is normally driven by :class:`repro.serve.fleet.FleetManager`,
which owns the shard processes and supplies the ``owner_of`` /
``control`` / ``on_shard_error`` callbacks.
"""

from __future__ import annotations

import asyncio
import hashlib
import json
from bisect import bisect_right
from pathlib import Path
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.obs import get_logger, metrics
from repro.serve.requests import BadRequest, normalize_request
from repro.serve.transport import (
    MAX_FRAME_BYTES,
    Endpoint,
    EndpointLike,
    FrameAssembler,
    bound_endpoint,
    encode_frame,
    frame_too_large_response,
    parse_endpoint,
    read_frame_async,
)

log = get_logger("repro.serve.router")

#: Virtual points per shard.  64 keeps the ring balanced to within a few
#: percent for single-digit shard counts while staying cheap to rebuild.
DEFAULT_REPLICAS = 64


def _ring_hash(key: str) -> int:
    """Stable 64-bit ring position (md5 prefix; no PYTHONHASHSEED)."""
    digest = hashlib.md5(key.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class HashRing:
    """Consistent hashing of string keys onto named members.

    Immutable by convention: membership changes produce a new ring via
    :meth:`without` / :meth:`with_member`, which keeps ownership lookups
    lock-free for concurrent readers.
    """

    def __init__(
        self, members: Iterable[str], replicas: int = DEFAULT_REPLICAS
    ) -> None:
        self.replicas = int(replicas)
        if self.replicas < 1:
            raise ValueError("replicas must be >= 1")
        self.members: Tuple[str, ...] = tuple(sorted(set(members)))
        points: List[Tuple[int, str]] = []
        for member in self.members:
            for i in range(self.replicas):
                points.append((_ring_hash(f"{member}#{i}"), member))
        points.sort()
        self._points = points
        self._hashes = [p[0] for p in points]

    def owner(self, key: str) -> str:
        """The member owning ``key`` (first point clockwise from its hash)."""
        if not self._points:
            raise LookupError("hash ring is empty")
        idx = bisect_right(self._hashes, _ring_hash(key))
        if idx == len(self._points):
            idx = 0
        return self._points[idx][1]

    def without(self, *members: str) -> "HashRing":
        """A new ring with ``members`` removed (e.g. dead shards)."""
        gone = set(members)
        return HashRing(
            (m for m in self.members if m not in gone), self.replicas
        )

    def with_member(self, member: str) -> "HashRing":
        """A new ring with ``member`` (re-)admitted."""
        return HashRing((*self.members, member), self.replicas)

    def spread(self, keys: Sequence[str]) -> Dict[str, int]:
        """How many of ``keys`` each member owns — for balance checks."""
        counts = {m: 0 for m in self.members}
        for key in keys:
            counts[self.owner(key)] += 1
        return counts

    def __len__(self) -> int:
        return len(self.members)

    def __contains__(self, member: object) -> bool:
        return member in self.members

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"HashRing(members={list(self.members)}, replicas={self.replicas})"


class FleetRouter:
    """Asyncio unix-socket JSONL intake that forwards to owning shards.

    The router is transport + routing only; all admission policy
    (dedupe, breaker, queue shed) stays in the shard daemons, so a
    response seen through the router is byte-for-byte a daemon response
    plus the ``shard`` annotation.

    Parameters
    ----------
    bind:
        Where to listen (the fleet's public endpoint): a unix socket
        path, or any ``unix:<path>`` / ``tcp:<host>:<port>`` spec.
    owner_of:
        ``job_id -> (shard_name, shard_endpoint)`` for the current
        ring of *live* shards, or ``None`` when no shard is available.
    control:
        ``verb -> payload`` for ``stats`` / ``health`` verbs, answered
        at the router with fleet-wide aggregates.
    shards:
        ``() -> [(shard_name, shard_endpoint), ...]`` for the *live*
        shard set — the fan-out fallback for ``fetch``: when the ring
        has moved since a job completed (shard death, readmission), the
        hashed owner may answer ``not_found`` even though another shard
        holds the result, so the router asks everyone before giving up.
    on_shard_error:
        Called with a shard name whenever forwarding to it fails — the
        fleet manager uses this as an early death signal, ahead of its
        own supervision sweep.

    The intake is hardened per DESIGN.md §14: a per-connection idle
    deadline (``idle_timeout_sec``) evicts slow-loris clients instead
    of holding the connection forever, frames over
    ``max_frame_bytes`` are answered ``rejected: frame_too_large``
    with the stream resynchronised at the next newline (no
    connection-killing ``LimitOverrunError``), malformed frames are
    counted, and a client that stops draining responses is evicted
    after ``write_timeout_sec``.
    """

    def __init__(
        self,
        bind: EndpointLike,
        owner_of: Callable[[str], Optional[Tuple[str, Endpoint]]],
        control: Callable[[str], Dict[str, Any]],
        shards: Optional[
            Callable[[], List[Tuple[str, Endpoint]]]
        ] = None,
        on_shard_error: Optional[Callable[[str], None]] = None,
        default_timeout_sec: Optional[float] = None,
        forward_timeout_sec: float = 10.0,
        retry_after_sec: float = 1.0,
        max_frame_bytes: int = MAX_FRAME_BYTES,
        idle_timeout_sec: float = 60.0,
        write_timeout_sec: float = 10.0,
    ) -> None:
        self.endpoint = parse_endpoint(bind)
        #: The endpoint actually bound (``tcp:...:0`` resolved); set by
        #: :meth:`start`.
        self.bound: Optional[Endpoint] = None
        self._owner_of = owner_of
        self._control = control
        self._shards = shards
        self._on_shard_error = on_shard_error
        self._default_timeout_sec = default_timeout_sec
        self._forward_timeout_sec = forward_timeout_sec
        self._retry_after_sec = retry_after_sec
        self.max_frame_bytes = max_frame_bytes
        self.idle_timeout_sec = idle_timeout_sec
        self.write_timeout_sec = write_timeout_sec
        self._server: Optional[asyncio.AbstractServer] = None

    @property
    def socket_path(self) -> Optional[Path]:
        """The unix socket path, when bound to one (back-compat)."""
        return self.endpoint.path if self.endpoint.scheme == "unix" else None

    async def start(self) -> None:
        if self.endpoint.scheme == "unix":
            path = self.endpoint.path
            path.parent.mkdir(parents=True, exist_ok=True)
            if path.exists():
                path.unlink()
            self._server = await asyncio.start_unix_server(
                self._handle_client, path=str(path)
            )
            self.bound = self.endpoint
        else:
            self._server = await asyncio.start_server(
                self._handle_client,
                host=self.endpoint.host,
                port=self.endpoint.port,
            )
            sock = self._server.sockets[0]
            self.bound = bound_endpoint(sock, self.endpoint)
        log.info("router.listen", socket=self.bound.describe())

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        self.endpoint.cleanup()

    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        assembler = FrameAssembler(self.max_frame_bytes)
        pending: List[Tuple[str, Any]] = []
        try:
            while True:
                kind, payload = await read_frame_async(
                    reader, assembler, pending,
                    idle_timeout_sec=self.idle_timeout_sec,
                )
                if kind == "eof":
                    break
                if kind == "idle":
                    # Slow-loris: no byte in idle_timeout_sec.  Close
                    # and count instead of pinning the intake forever.
                    metrics().counter("transport.idle_evicted").inc()
                    log.warning(
                        "router.idle_evicted",
                        idle_sec=self.idle_timeout_sec,
                    )
                    break
                if kind == "too_large":
                    response = frame_too_large_response(self.max_frame_bytes)
                    log.warning("router.frame_too_large", bytes=payload)
                else:
                    if not payload.strip():
                        continue
                    response = await self._handle_line(payload)
                writer.write(encode_frame(response))
                try:
                    await asyncio.wait_for(
                        writer.drain(), timeout=self.write_timeout_sec
                    )
                except asyncio.TimeoutError:
                    # The client stopped reading its responses.
                    metrics().counter(
                        "transport.slow_client_evicted"
                    ).inc()
                    log.warning("router.slow_client_evicted")
                    break
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    async def _handle_line(self, line: bytes) -> Dict[str, Any]:
        try:
            raw = json.loads(line)
        except json.JSONDecodeError as exc:
            metrics().counter("transport.malformed_frames").inc()
            return {"status": "rejected", "reason": f"invalid: {exc}"}
        if isinstance(raw, dict) and "verb" in raw:
            if raw.get("verb") == "fetch":
                return await self.fetch(raw)
            try:
                payload = self._control(str(raw["verb"]))
            except Exception as exc:  # control must never kill the loop
                return {"status": "error", "error": str(exc)}
            return payload
        try:
            request = normalize_request(raw, self._default_timeout_sec)
        except BadRequest as exc:
            metrics().counter("serve.fleet.rejected").inc()
            return {"status": "rejected", "reason": f"invalid: {exc}"}
        if request.get("timeout_sec") is None:
            # Leave the key absent so the shard applies its own default
            # instead of seeing an explicit null.
            request.pop("timeout_sec", None)
        return await self.route(request)

    async def route(self, request: Dict[str, Any]) -> Dict[str, Any]:
        """Forward one normalised request to its owning live shard."""
        job_id = request["job_id"]
        target = self._owner_of(job_id)
        if target is None:
            metrics().counter("serve.fleet.no_shard").inc()
            return {
                "status": "rejected",
                "reason": "no_live_shard",
                "retry_after_sec": self._retry_after_sec,
                "job_id": job_id,
            }
        shard, shard_endpoint = target
        try:
            response = await asyncio.wait_for(
                self._forward(shard_endpoint, request),
                timeout=self._forward_timeout_sec,
            )
        except (OSError, asyncio.TimeoutError, ValueError) as exc:
            log.warning("router.forward_failed", shard=shard, error=str(exc))
            metrics().counter("serve.fleet.forward_failed").inc()
            if self._on_shard_error is not None:
                self._on_shard_error(shard)
            return {
                "status": "rejected",
                "reason": "shard_unavailable",
                "retry_after_sec": self._retry_after_sec,
                "job_id": job_id,
                "shard": shard,
            }
        metrics().counter("serve.fleet.routed").inc()
        response.setdefault("shard", shard)
        return response

    async def fetch(self, raw: Dict[str, Any]) -> Dict[str, Any]:
        """Route a ``fetch`` verb: owning shard first, then fan-out.

        The job_id hashes to its owning shard exactly as admission did,
        so in the steady state one forward answers the fetch.  When the
        owner misses (``not_found``, or a ``moved`` tombstone left by a
        handoff) and the fleet has other live shards, the router fans
        out to each of them — a ring that moved between completion and
        fetch means the result lives on whichever shard ran the job.
        """
        job_id = raw.get("job_id")
        if not isinstance(job_id, str) or not job_id:
            return {
                "status": "rejected",
                "reason": "invalid",
                "detail": "fetch needs a string job_id",
            }
        request = {"verb": "fetch", "job_id": job_id}
        candidates: List[Tuple[str, Endpoint]] = []
        target = self._owner_of(job_id)
        if target is not None:
            candidates.append(target)
        if self._shards is not None:
            for shard, endpoint in self._shards():
                if target is None or shard != target[0]:
                    candidates.append((shard, endpoint))
        if not candidates:
            metrics().counter("serve.fleet.no_shard").inc()
            return {
                "status": "rejected",
                "reason": "no_live_shard",
                "retry_after_sec": self._retry_after_sec,
                "job_id": job_id,
            }
        reachable = False
        not_found: Optional[Dict[str, Any]] = None
        moved: Optional[Dict[str, Any]] = None
        for index, (shard, shard_endpoint) in enumerate(candidates):
            if index == 1:
                metrics().counter("serve.fleet.fetch_fanout").inc()
            try:
                response = await asyncio.wait_for(
                    self._forward(shard_endpoint, request),
                    timeout=self._forward_timeout_sec,
                )
            except (OSError, asyncio.TimeoutError, ValueError) as exc:
                log.warning(
                    "router.fetch_forward_failed", shard=shard, error=str(exc)
                )
                if self._on_shard_error is not None:
                    self._on_shard_error(shard)
                continue
            reachable = True
            if response.get("status") == "not_found":
                if not_found is None:
                    not_found = response
                continue
            if response.get("state") == "moved":
                if moved is None:
                    moved = response
                    moved.setdefault("shard", shard)
                continue
            metrics().counter("serve.fleet.fetched").inc()
            response.setdefault("shard", shard)
            return response
        if not reachable:
            return {
                "status": "rejected",
                "reason": "shard_unavailable",
                "retry_after_sec": self._retry_after_sec,
                "job_id": job_id,
            }
        miss = not_found or moved or {"status": "not_found"}
        miss.setdefault("job_id", job_id)
        return miss

    async def _forward(
        self, shard_endpoint: EndpointLike, request: Dict[str, Any]
    ) -> Dict[str, Any]:
        """One framed request/response exchange with a shard daemon.

        Works over the shard's unix socket or its TCP endpoint — the
        only thing that changes for a cross-node fleet is this connect.
        """
        endpoint = parse_endpoint(shard_endpoint)
        if endpoint.scheme == "unix":
            reader, writer = await asyncio.open_unix_connection(
                str(endpoint.path)
            )
        else:
            reader, writer = await asyncio.open_connection(
                endpoint.host, endpoint.port
            )
        try:
            writer.write(encode_frame(request))
            await writer.drain()
            assembler = FrameAssembler(self.max_frame_bytes)
            pending: List[Tuple[str, Any]] = []
            kind, payload = await read_frame_async(reader, assembler, pending)
            if kind != "frame":
                raise ConnectionError(
                    "shard closed the socket mid-protocol"
                    if kind == "eof"
                    else f"shard response unusable ({kind})"
                )
            response = json.loads(payload)
            if not isinstance(response, dict):
                raise ConnectionError("shard returned a non-object response")
            return response
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass
