"""One framed JSONL transport for unix *and* TCP endpoints, plus the
resilient client that survives a lossy wire (DESIGN.md §14).

Everything the serve stack says over a socket — client→daemon
submissions, client→router submissions, router→shard forwarding —
speaks the same protocol: one JSON object per ``\\n``-terminated frame,
with a hard per-frame byte cap.  This module owns that protocol end to
end so the unix and TCP paths cannot drift:

* :class:`Endpoint` / :func:`parse_endpoint` — ``unix:<path>`` and
  ``tcp:<host>:<port>`` specs (a bare path is a unix socket, for
  backward compatibility).  ``tcp:127.0.0.1:0`` binds an ephemeral
  port; :func:`bound_endpoint` recovers the real one.
* :class:`FrameAssembler` — an incremental, transport-agnostic frame
  parser.  It enforces :data:`MAX_FRAME_BYTES` *and resynchronises* at
  the next newline, so one oversized frame costs one ``rejected:
  frame_too_large`` response instead of the connection (satellite fix
  for asyncio's connection-killing ``LimitOverrunError``).
* sync + async read helpers built on the assembler, with per-read idle
  deadlines — a slow-loris client is evicted, not collected.
* :class:`ResilientClient` — the tentpole: an overall deadline budget,
  bounded retries with exponential backoff + jitter, reconnect on
  half-open/severed connections, ``retry_after_sec`` honoured from
  load-shed / circuit-open / no-shard rejections, and idempotent
  resubmission (safe by construction: job_ids are content hashes and
  the journal dedupes, so a retried "accepted" collapses to
  ``duplicate``).

Usage::

    from repro.serve.transport import ResilientClient

    client = ResilientClient("tcp:127.0.0.1:7777", deadline_sec=30.0)
    responses = client.submit([{"kind": "chaos", "params": {}}])
    assert all(r["status"] in ("accepted", "duplicate") for r in responses)

Every failure escaping the client is a :class:`TransportError` with a
``retryable`` classification and the partial responses already
received — never a raw traceback from a torn socket.
"""

from __future__ import annotations

import json
import os
import random
import socket
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.obs import get_logger, metrics

_log = get_logger("repro.serve.transport")

#: Hard cap on one JSONL frame (request or response).  Far above any
#: legitimate job request, far below anything that could pin intake
#: memory.  asyncio's default StreamReader limit is 64 KiB; we manage
#: our own buffers, so the cap is explicit rather than inherited.
MAX_FRAME_BYTES = 1_048_576

#: Read chunk for the incremental frame readers.
_CHUNK = 65536

#: ``rejected`` reasons that mean "try again later" — the server shed
#: or deferred the work without running it, so resubmission is safe and
#: expected (DESIGN.md §10 "rejections are retryable").
RETRYABLE_REJECTIONS = frozenset(
    {
        "overloaded",
        "circuit_open",
        "draining",
        "disk_full",
        "no_live_shard",
        "shard_unavailable",
    }
)


# ----------------------------------------------------------------------
# Endpoints: unix:<path> | tcp:<host>:<port>
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Endpoint:
    """One parsed ``--bind`` target; hashable, printable, connectable."""

    scheme: str  # "unix" | "tcp"
    path: Optional[Path] = None
    host: Optional[str] = None
    port: Optional[int] = None

    def describe(self) -> str:
        if self.scheme == "unix":
            return f"unix:{self.path}"
        return f"tcp:{self.host}:{self.port}"

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.describe()

    def connect(self, timeout: Optional[float] = None) -> socket.socket:
        """A connected stream socket to this endpoint."""
        if self.scheme == "unix":
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            sock.settimeout(timeout)
            sock.connect(str(self.path))
            return sock
        return socket.create_connection(
            (self.host, self.port), timeout=timeout
        )

    def listen(self, backlog: int = 16) -> socket.socket:
        """A bound, listening stream socket (unlinks a stale unix path)."""
        if self.scheme == "unix":
            self.path.parent.mkdir(parents=True, exist_ok=True)
            try:
                self.path.unlink()
            except FileNotFoundError:
                pass
            server = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            server.bind(str(self.path))
        else:
            server = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            server.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            server.bind((self.host, self.port))
        server.listen(backlog)
        return server

    def cleanup(self) -> None:
        """Remove a unix socket file; a no-op for TCP."""
        if self.scheme == "unix" and self.path is not None:
            try:
                self.path.unlink()
            except OSError:
                pass


EndpointLike = Union[Endpoint, str, Path, os.PathLike]


def parse_endpoint(spec: EndpointLike) -> Endpoint:
    """``unix:<path>`` / ``tcp:<host>:<port>`` → :class:`Endpoint`.

    A bare path (no scheme) is a unix socket, so every pre-TCP call
    site (`submit_via_socket(path, ...)`) keeps working unchanged.
    """
    if isinstance(spec, Endpoint):
        return spec
    if isinstance(spec, (Path, os.PathLike)) and not isinstance(spec, str):
        return Endpoint(scheme="unix", path=Path(spec))
    text = str(spec)
    if text.startswith("unix:"):
        path = text[len("unix:"):]
        if not path:
            raise ValueError(f"empty unix socket path in {text!r}")
        return Endpoint(scheme="unix", path=Path(path))
    if text.startswith("tcp:"):
        rest = text[len("tcp:"):]
        host, sep, port_text = rest.rpartition(":")
        if not sep or not host:
            raise ValueError(
                f"tcp endpoint must be tcp:<host>:<port>, got {text!r}"
            )
        try:
            port = int(port_text)
        except ValueError:
            raise ValueError(f"tcp port must be an integer, got {port_text!r}")
        if not 0 <= port <= 65535:
            raise ValueError(f"tcp port out of range: {port}")
        return Endpoint(scheme="tcp", host=host, port=port)
    return Endpoint(scheme="unix", path=Path(text))


def bound_endpoint(server: socket.socket, endpoint: Endpoint) -> Endpoint:
    """The endpoint a listening socket actually bound (resolves port 0)."""
    if endpoint.scheme == "unix":
        return endpoint
    host, port = server.getsockname()[:2]
    return Endpoint(scheme="tcp", host=endpoint.host or host, port=port)


# ----------------------------------------------------------------------
# Framing: newline-delimited JSON with a byte cap and resync
# ----------------------------------------------------------------------
def encode_frame(obj: Any) -> bytes:
    """One JSON object as a wire frame (caller checks the size cap)."""
    return json.dumps(obj).encode("utf-8") + b"\n"


class FrameAssembler:
    """Incremental newline-frame parser with an oversize-resync path.

    Feed raw chunks; collect ``(kind, payload)`` events:

    * ``("frame", bytes)`` — one complete frame, newline stripped;
    * ``("too_large", size_so_far)`` — the current frame crossed
      ``max_bytes``; emitted once, then input is discarded until the
      next newline so the *following* frame parses normally.

    Pure and transport-agnostic, so the threaded daemon intake, the
    asyncio router, and the chaos proxy all share one set of framing
    semantics (and one set of tests).
    """

    def __init__(self, max_bytes: int = MAX_FRAME_BYTES) -> None:
        self.max_bytes = int(max_bytes)
        self._buffer = bytearray()
        self._discarding = False
        self._discarded = 0

    def feed(self, data: bytes) -> List[Tuple[str, Any]]:
        events: List[Tuple[str, Any]] = []
        self._buffer += data
        while True:
            idx = self._buffer.find(b"\n")
            if self._discarding:
                if idx < 0:
                    self._discarded += len(self._buffer)
                    self._buffer.clear()
                    break
                self._discarded += idx
                del self._buffer[: idx + 1]
                self._discarding = False
                continue
            if idx >= 0:
                frame = bytes(self._buffer[:idx])
                del self._buffer[: idx + 1]
                if len(frame) > self.max_bytes:
                    events.append(("too_large", len(frame)))
                else:
                    events.append(("frame", frame))
                continue
            if len(self._buffer) > self.max_bytes:
                events.append(("too_large", len(self._buffer)))
                self._discarded = len(self._buffer)
                self._buffer.clear()
                self._discarding = True
                break
            break
        return events

    @property
    def pending_bytes(self) -> int:
        return len(self._buffer)


def frame_too_large_response(max_bytes: int) -> Dict[str, Any]:
    """The server's answer to an oversized frame (not retryable as-is:
    the client must shrink the request, not wait)."""
    metrics().counter("transport.frames_too_large").inc()
    return {
        "status": "rejected",
        "reason": "frame_too_large",
        "max_frame_bytes": int(max_bytes),
    }


def read_frames(
    conn: socket.socket,
    max_bytes: int = MAX_FRAME_BYTES,
    idle_timeout_sec: Optional[float] = None,
):
    """Generate framing events from a blocking socket until EOF.

    Yields the :class:`FrameAssembler` events plus ``("idle", None)``
    when no byte arrives within ``idle_timeout_sec`` — the caller
    decides to evict.  The timeout also bounds *writes* made through
    the same socket (``settimeout`` applies to both directions), which
    is what evicts a slow client that stops reading its responses.
    """
    assembler = FrameAssembler(max_bytes)
    conn.settimeout(idle_timeout_sec)
    while True:
        try:
            chunk = conn.recv(_CHUNK)
        except socket.timeout:
            yield ("idle", None)
            return
        except OSError:
            return
        if not chunk:
            return
        for event in assembler.feed(chunk):
            yield event


async def read_frame_async(
    reader,
    buffer: FrameAssembler,
    pending: List[Tuple[str, Any]],
    idle_timeout_sec: Optional[float] = None,
) -> Tuple[str, Any]:
    """One framing event from an asyncio StreamReader.

    ``buffer``/``pending`` are per-connection state owned by the
    caller.  Returns ``("frame", bytes)``, ``("too_large", n)``,
    ``("idle", None)`` or ``("eof", None)``.  Never raises
    ``LimitOverrunError``: the assembler resynchronises instead.
    """
    import asyncio

    while True:
        if pending:
            return pending.pop(0)
        try:
            if idle_timeout_sec is not None:
                chunk = await asyncio.wait_for(
                    reader.read(_CHUNK), timeout=idle_timeout_sec
                )
            else:
                chunk = await reader.read(_CHUNK)
        except asyncio.TimeoutError:
            return ("idle", None)
        if not chunk:
            return ("eof", None)
        pending.extend(buffer.feed(chunk))


# ----------------------------------------------------------------------
# Classified client-side errors
# ----------------------------------------------------------------------
class TransportError(ConnectionError):
    """A classified transport failure.

    ``retryable`` says whether resubmitting later can succeed;
    ``responses`` carries every response received before the failure
    (satellite fix: a mid-batch drop no longer discards delivered
    responses); ``attempts`` and ``last_error`` summarise the retry
    history for operators.

    Subclasses :class:`ConnectionError`, so every pre-existing
    ``except (OSError, ConnectionError)`` call site keeps catching it.
    """

    retryable = True

    def __init__(
        self,
        message: str,
        responses: Optional[List[Dict[str, Any]]] = None,
        attempts: int = 0,
        last_error: Optional[BaseException] = None,
    ) -> None:
        super().__init__(message)
        self.responses: List[Dict[str, Any]] = list(responses or [])
        self.attempts = attempts
        self.last_error = last_error


class ProtocolError(TransportError):
    """The peer severed the connection mid-protocol (torn frame, close
    between request and response).  Retryable: resubmission dedupes."""


class FrameTooLargeError(TransportError):
    """The server rejected a frame over its byte cap.  NOT retryable:
    resubmitting the same bytes can only fail the same way."""

    retryable = False


class DeadlineExceeded(TransportError):
    """The overall deadline budget ran out before every request was
    answered.  Retryable later — nothing was lost, only unanswered."""


class RetryBudgetExceeded(TransportError):
    """``max_attempts`` consecutive attempts failed.  Retryable later."""


# ----------------------------------------------------------------------
# One-shot protocol exchange (the primitive ResilientClient loops over)
# ----------------------------------------------------------------------
def exchange(
    endpoint: EndpointLike,
    payloads: Sequence[Dict[str, Any]],
    timeout: float = 10.0,
    max_frame_bytes: int = MAX_FRAME_BYTES,
) -> List[Dict[str, Any]]:
    """Send ``payloads`` over one connection; one response per payload.

    One-shot and fail-fast — no retries, no reconnect.  On a mid-batch
    failure it raises :class:`ProtocolError` carrying the responses
    already received, so the caller knows exactly which requests were
    delivered (this is what :class:`ResilientClient` builds on).
    """
    endpoint = parse_endpoint(endpoint)
    responses: List[Dict[str, Any]] = []
    try:
        conn = endpoint.connect(timeout=timeout)
    except OSError as exc:
        raise ProtocolError(
            f"cannot connect to {endpoint.describe()}: {exc}",
            responses=[],
            last_error=exc,
        ) from exc
    with conn:
        assembler = FrameAssembler(max_frame_bytes)
        received: List[Tuple[str, Any]] = []
        for payload in payloads:
            frame = encode_frame(payload)
            if len(frame) - 1 > max_frame_bytes:
                raise FrameTooLargeError(
                    f"request frame is {len(frame) - 1} bytes "
                    f"(cap {max_frame_bytes})",
                    responses=responses,
                )
            try:
                conn.sendall(frame)
                while not received:
                    chunk = conn.recv(_CHUNK)
                    if not chunk:
                        raise ProtocolError(
                            "peer closed the socket mid-protocol "
                            f"({len(responses)}/{len(payloads)} answered)",
                            responses=responses,
                        )
                    received.extend(assembler.feed(chunk))
            except socket.timeout as exc:
                raise ProtocolError(
                    f"peer sent no response within {timeout}s "
                    f"({len(responses)}/{len(payloads)} answered)",
                    responses=responses,
                    last_error=exc,
                ) from exc
            except OSError as exc:
                if isinstance(exc, TransportError):
                    raise
                raise ProtocolError(
                    f"connection to {endpoint.describe()} failed: {exc} "
                    f"({len(responses)}/{len(payloads)} answered)",
                    responses=responses,
                    last_error=exc,
                ) from exc
            kind, data = received.pop(0)
            if kind == "too_large":
                raise ProtocolError(
                    "peer sent an oversized response frame",
                    responses=responses,
                )
            try:
                response = json.loads(data)
            except json.JSONDecodeError as exc:
                raise ProtocolError(
                    f"peer sent an undecodable response frame: {exc}",
                    responses=responses,
                    last_error=exc,
                ) from exc
            if not isinstance(response, dict):
                raise ProtocolError(
                    "peer sent a non-object response",
                    responses=responses,
                )
            responses.append(response)
    return responses


# ----------------------------------------------------------------------
# The resilient client
# ----------------------------------------------------------------------
@dataclass
class RetryPolicy:
    """Backoff/deadline knobs for :class:`ResilientClient`."""

    deadline_sec: float = 30.0
    max_attempts: int = 6
    backoff_base_sec: float = 0.05
    backoff_max_sec: float = 2.0
    jitter_frac: float = 0.5
    connect_timeout_sec: float = 5.0
    io_timeout_sec: float = 10.0

    def backoff(self, attempt: int, rng: random.Random) -> float:
        """Exponential backoff with full jitter, capped."""
        base = min(
            self.backoff_base_sec * (2 ** max(attempt - 1, 0)),
            self.backoff_max_sec,
        )
        return base * (1.0 - self.jitter_frac * rng.random())


class ResilientClient:
    """Submit jobs through an unreliable wire and still get an answer.

    Wraps :func:`exchange` with: an overall deadline budget, bounded
    retries under exponential backoff + jitter, reconnection on severed
    or half-open connections, ``retry_after_sec`` honoured (capped by
    the remaining budget) on retryable rejections, and idempotent
    resubmission of only the *unanswered* requests after a partial
    batch.  A request the server already executed answers ``duplicate``
    on resubmission — content-hashed job_ids plus journal dedupe make
    retrying always safe, which is the contract that lets this client
    retry blindly.

    Every exit is classified: the returned list holds one final
    response per request (terminal rejections like ``invalid`` or
    ``frame_too_large`` included), or a :class:`TransportError`
    subclass with ``retryable``, ``attempts`` and the partial
    ``responses`` — never a raw socket traceback, never an unbounded
    hang.
    """

    def __init__(
        self,
        endpoint: EndpointLike,
        policy: Optional[RetryPolicy] = None,
        rng: Optional[random.Random] = None,
        sleep: Callable[[float], None] = time.sleep,
        clock: Callable[[], float] = time.monotonic,
        max_frame_bytes: int = MAX_FRAME_BYTES,
        **policy_overrides: Any,
    ) -> None:
        self.endpoint = parse_endpoint(endpoint)
        if policy is None:
            policy = RetryPolicy(**policy_overrides)
        elif policy_overrides:
            raise TypeError("pass either policy= or keyword overrides")
        self.policy = policy
        self._rng = rng or random.Random()
        self._sleep = sleep
        self._clock = clock
        self.max_frame_bytes = max_frame_bytes

    # -- public API ----------------------------------------------------
    def submit(
        self, requests: Sequence[Dict[str, Any]]
    ) -> List[Dict[str, Any]]:
        """One final response per request, in request order."""
        return self._run(list(requests))

    def call(self, request: Dict[str, Any]) -> Dict[str, Any]:
        """Submit one request; returns its final response."""
        return self._run([request])[0]

    def query(self, verb: str = "stats") -> Dict[str, Any]:
        """A control verb (``stats`` / ``health``) with the same retry
        machinery as job submission."""
        return self._run([{"verb": verb}])[0]

    def fetch(
        self,
        job_id: str,
        wait: bool = False,
        poll_interval_sec: float = 0.25,
    ) -> Dict[str, Any]:
        """Fetch a job's result by id (the ``fetch`` verb).

        With ``wait=False`` (default), one retried exchange: the
        response may be ``pending`` (job queued/leased/repairing) or
        ``not_found``.  With ``wait=True``, keeps polling through
        those states — honouring each response's ``retry_after_sec``
        hint — until the job is terminal (``ok``/``failed``/terminal
        ``rejected``) or the policy's deadline budget runs out
        (:class:`DeadlineExceeded`).  Each poll is itself a fully
        retried exchange, so a flaky wire and a slow job compose.
        """
        deadline = self._clock() + self.policy.deadline_sec
        while True:
            response = self._run([{"verb": "fetch", "job_id": job_id}])[0]
            status = response.get("status")
            if not wait or status not in ("pending", "not_found"):
                return response
            hint = response.get("retry_after_sec")
            pause = float(hint) if hint else poll_interval_sec
            remaining = deadline - self._clock()
            if remaining <= 0:
                metrics().counter("transport.deadline_exhausted").inc()
                raise DeadlineExceeded(
                    f"fetch({job_id!r}) still {status} after the "
                    f"{self.policy.deadline_sec}s deadline budget",
                    responses=[response],
                )
            self._sleep(min(pause, remaining))

    # -- the retry loop ------------------------------------------------
    def _run(self, requests: List[Dict[str, Any]]) -> List[Dict[str, Any]]:
        policy = self.policy
        deadline = self._clock() + policy.deadline_sec
        final: Dict[int, Dict[str, Any]] = {}
        open_idx = list(range(len(requests)))
        attempts = 0
        consecutive_failures = 0
        last_error: Optional[BaseException] = None

        while open_idx:
            remaining = deadline - self._clock()
            if remaining <= 0:
                metrics().counter("transport.deadline_exhausted").inc()
                raise DeadlineExceeded(
                    f"deadline budget ({policy.deadline_sec}s) exhausted "
                    f"with {len(open_idx)}/{len(requests)} unanswered",
                    responses=self._ordered(final, len(requests)),
                    attempts=attempts,
                    last_error=last_error,
                )
            if consecutive_failures >= policy.max_attempts:
                metrics().counter("transport.gave_up").inc()
                raise RetryBudgetExceeded(
                    f"{consecutive_failures} consecutive attempts failed "
                    f"against {self.endpoint.describe()}",
                    responses=self._ordered(final, len(requests)),
                    attempts=attempts,
                    last_error=last_error,
                )
            attempts += 1
            if attempts > 1:
                metrics().counter("transport.retries").inc()
            batch = [requests[i] for i in open_idx]
            io_timeout = min(policy.io_timeout_sec, max(remaining, 0.05))
            started = time.perf_counter()
            try:
                responses = exchange(
                    self.endpoint,
                    batch,
                    timeout=io_timeout,
                    max_frame_bytes=self.max_frame_bytes,
                )
                delivered = list(zip(open_idx, responses))
                failure: Optional[TransportError] = None
            except FrameTooLargeError:
                raise
            except TransportError as exc:
                delivered = list(zip(open_idx, exc.responses))
                failure = exc
                last_error = exc
                metrics().counter("transport.reconnects").inc()
            metrics().log_histogram("transport.attempt_sec").observe(
                time.perf_counter() - started
            )

            retry_after = 0.0
            still_open: List[int] = []
            answered = 0
            for idx, response in delivered:
                status = response.get("status")
                reason = response.get("reason")
                if status == "rejected" and reason in RETRYABLE_REJECTIONS:
                    hint = response.get("retry_after_sec")
                    if isinstance(hint, (int, float)) and hint > 0:
                        retry_after = max(retry_after, float(hint))
                        metrics().counter(
                            "transport.retry_after_honored"
                        ).inc()
                    still_open.append(idx)
                    continue
                final[idx] = response
                answered += 1
            # Unanswered requests of a torn batch stay open for the
            # next attempt; their job_ids dedupe server-side.
            delivered_idx = {idx for idx, _ in delivered}
            still_open.extend(i for i in open_idx if i not in delivered_idx)
            open_idx = sorted(still_open)

            if not open_idx:
                break
            if failure is None and answered > 0 and retry_after == 0.0:
                # Progress without a transport fault and without a
                # retry hint (shouldn't happen with a well-formed
                # server, but never spin hot on it).
                consecutive_failures = 0
                pause = policy.backoff(1, self._rng)
            elif failure is None:
                consecutive_failures = 0 if answered else (
                    consecutive_failures + 1
                )
                pause = max(retry_after, policy.backoff(1, self._rng))
            else:
                consecutive_failures += 1
                pause = max(
                    retry_after,
                    policy.backoff(consecutive_failures, self._rng),
                )
            # Never sleep past the deadline: cap the pause so the final
            # attempt (or the DeadlineExceeded) happens on time.
            pause = min(pause, max(deadline - self._clock(), 0.0))
            if pause > 0:
                self._sleep(pause)
        return self._ordered(final, len(requests))

    @staticmethod
    def _ordered(
        final: Dict[int, Dict[str, Any]], n: int
    ) -> List[Dict[str, Any]]:
        return [final[i] for i in sorted(final) if i < n]
