"""Per-job-class circuit breakers.

A spec class that keeps failing (a bad trace directory, a crashing
protocol) must not burn worker slots and retries forever: after
``failure_threshold`` consecutive failures the class's breaker *opens*
and further jobs of that class are short-circuited to ``rejected:
circuit_open``.  After ``cooldown_sec`` the breaker goes *half-open*
and admits a single probe: success closes it, failure re-opens it (and
restarts the cooldown).

The clock is injectable so the transition tests don't sleep — and so
this example runs instantly::

    from repro.serve.breaker import CircuitBreaker, OPEN, CLOSED

    now = [0.0]
    breaker = CircuitBreaker(
        failure_threshold=2, cooldown_sec=30.0, clock=lambda: now[0]
    )
    breaker.record_failure("drill")
    breaker.record_failure("drill")        # second consecutive failure
    assert breaker.state("drill") == OPEN
    assert not breaker.allow("drill")
    assert breaker.remaining_cooldown("drill") == 30.0  # retry-after
    now[0] = 31.0                          # cooldown elapsed
    assert breaker.allow("drill")          # the one half-open probe
    breaker.record_success("drill")
    assert breaker.state("drill") == CLOSED
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

from repro import obs

_log = obs.get_logger("repro.serve")

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


@dataclass
class _ClassState:
    state: str = CLOSED
    consecutive_failures: int = 0
    opened_at: float = 0.0
    probe_in_flight: bool = False


@dataclass
class CircuitBreaker:
    """One breaker per job class, keyed lazily."""

    failure_threshold: int = 3
    cooldown_sec: float = 30.0
    clock: Callable[[], float] = time.monotonic
    #: Observer invoked as ``on_open(job_class, consecutive_failures)``
    #: each time a breaker transitions to OPEN — the daemon hooks the
    #: flight recorder here.  Exceptions are swallowed: an observer
    #: must never break admission.
    on_open: Optional[Callable[[str, int], None]] = None
    _classes: Dict[str, _ClassState] = field(default_factory=dict)

    def _cls(self, job_class: str) -> _ClassState:
        return self._classes.setdefault(job_class, _ClassState())

    def state(self, job_class: str) -> str:
        cls = self._cls(job_class)
        self._maybe_half_open(job_class, cls)
        return cls.state

    def _maybe_half_open(self, job_class: str, cls: _ClassState) -> None:
        if cls.state == OPEN and self.clock() - cls.opened_at >= self.cooldown_sec:
            cls.state = HALF_OPEN
            cls.probe_in_flight = False
            _log.info("breaker.half_open", job_class=job_class)

    def remaining_cooldown(self, job_class: str) -> float:
        """Seconds until an OPEN breaker half-opens; 0.0 when not open.

        This is the retry-after hint handed to clients whose new work
        is short-circuited at admission, and the delay the daemon uses
        to defer already-admitted jobs of an open class.
        """
        cls = self._cls(job_class)
        self._maybe_half_open(job_class, cls)
        if cls.state != OPEN:
            return 0.0
        return max(0.0, self.cooldown_sec - (self.clock() - cls.opened_at))

    def allow(self, job_class: str) -> bool:
        """May a job of this class be dispatched right now?

        In half-open state exactly one probe is allowed through; its
        outcome (reported via :meth:`record_success` /
        :meth:`record_failure`) decides the next state.
        """
        cls = self._cls(job_class)
        self._maybe_half_open(job_class, cls)
        if cls.state == CLOSED:
            return True
        if cls.state == HALF_OPEN and not cls.probe_in_flight:
            cls.probe_in_flight = True
            return True
        return False

    def record_success(self, job_class: str) -> None:
        cls = self._cls(job_class)
        if cls.state == HALF_OPEN:
            _log.info("breaker.closed", job_class=job_class)
        cls.state = CLOSED
        cls.consecutive_failures = 0
        cls.probe_in_flight = False

    def record_failure(self, job_class: str) -> None:
        cls = self._cls(job_class)
        cls.consecutive_failures += 1
        cls.probe_in_flight = False
        if cls.state == HALF_OPEN or (
            cls.state == CLOSED
            and cls.consecutive_failures >= self.failure_threshold
        ):
            cls.state = OPEN
            cls.opened_at = self.clock()
            obs.metrics().counter("breaker.open").inc()
            _log.warning(
                "breaker.open",
                job_class=job_class,
                consecutive_failures=cls.consecutive_failures,
                cooldown_sec=self.cooldown_sec,
            )
            if self.on_open is not None:
                try:
                    self.on_open(job_class, cls.consecutive_failures)
                except Exception:
                    pass

    def states(self) -> Dict[str, dict]:
        """Live view of every known class: state, failures, cooldown."""
        out: Dict[str, dict] = {}
        for job_class in list(self._classes):
            out[job_class] = {
                "state": self.state(job_class),
                "failures": self._classes[job_class].consecutive_failures,
                "cooldown_sec": round(
                    self.remaining_cooldown(job_class), 3
                ),
            }
        return out
