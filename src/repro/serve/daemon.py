"""The ``repro serve`` daemon: a crash-tolerant simulation service.

One long-running process that accepts fit/simulate/experiment job
requests (JSONL via a watched spool directory and/or a unix socket),
journals every admission decision to a durable WAL before acting on it,
and runs jobs through a supervised process-per-lease worker set.

The invariants (DESIGN.md §10):

* **admit-then-act** — a request is fsync'd to the journal as
  ``submitted`` before it can run, so a SIGKILL never loses an admitted
  job;
* **at-least-once execution, exactly-once completion** — on restart the
  journal is replayed and every non-terminal job is requeued; jobs with
  a ``completed`` record are never run again.  Effects are idempotent
  (content-hashed ids, atomic result writes, the profile cache), so a
  re-run lease converges to the same artifacts;
* **bounded everything** — the admission queue sheds (``rejected:
  overloaded`` + retry-after hint) instead of growing, per-class
  circuit breakers short-circuit *new* work of repeatedly failing
  specs at admission (``rejected: circuit_open`` + retry-after), and
  crashed worker slots restart under exponential backoff;
* **rejections are retryable, acceptances are kept** — a ``rejected``
  job was never run, so resubmitting the same job_id after the
  retry-after hint re-admits it (journaled ``requeued: resubmitted``).
  The one exception is a fleet ``moved:<shard>`` tombstone: that job
  now belongs to another shard, so resubmission answers ``duplicate``
  (only the fleet manager's ``requeue``-flagged recovery resubmission
  may revive it here).  Conversely a job the client was told was
  ``accepted`` is never
  terminally rejected later: if its class breaker is open at dispatch
  time the lease is deferred until the breaker half-opens;
* **graceful drain** — SIGTERM/SIGINT stop intake, let in-flight
  leases finish (up to ``drain_timeout_sec``, then checkpoint/requeue),
  flush the journal, write a complete run manifest, and exit 0.

Embedding the daemon (the CLI's ``repro serve run`` does exactly
this)::

    from pathlib import Path
    from repro.serve import ServeConfig, ServeDaemon

    config = ServeConfig(
        state_dir=Path("/tmp/ibox-serve"),
        socket_path=Path("/tmp/ibox-serve/serve.sock"),
        workers=2,
        queue_limit=64,
        max_runtime_sec=5.0,   # drain and return on its own (demo/CI)
    )
    exit_code = ServeDaemon(config).run()   # blocks until drained
    assert exit_code == 0

While it runs, clients reach it with
:func:`repro.serve.submit_via_socket`; afterwards
:func:`repro.serve.serve_status` replays the journal.  For N of these
behind one consistent-hashing socket, see :mod:`repro.serve.fleet`.
"""

from __future__ import annotations

import json
import os
import re
import signal
import socket
import threading
import time
from dataclasses import dataclass
from datetime import datetime, timezone
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence

from repro import obs
from repro.obs.live import (
    LIVE_VERSION,
    FlightRecorder,
    SLO,
    SLOTracker,
    SnapshotFlusher,
)
from repro.obs.profile import SamplingProfiler
from repro.runtime.locks import ProcessLock
from repro.runtime.manifest import RunManifest, new_run_id
from repro.serve.breaker import CircuitBreaker
from repro.serve.journal import JobJournal
from repro.serve.queue import AdmissionQueue
from repro.serve.requests import BadRequest, normalize_request
from repro.serve.supervisor import (
    LeaseEvent,
    Supervisor,
    quarantine_result,
    read_result,
)
from repro.serve.transport import (
    MAX_FRAME_BYTES,
    Endpoint,
    bound_endpoint,
    encode_frame,
    frame_too_large_response,
    parse_endpoint,
    read_frames,
)
from repro.trace.io import PathLike

#: File next to ``serve.pid`` naming the daemon's actual bound intake
#: endpoint (``unix:<path>`` / ``tcp:<host>:<port>`` — the latter with
#: the real port when ``tcp:...:0`` asked for an ephemeral one).
#: Clients and the fleet manager read it instead of guessing.
ENDPOINT_FILE = "serve.endpoint"

_log = obs.get_logger("repro.serve")

#: A lease may crash-requeue at most this many times before the job is
#: recorded ``failed`` (WorkerCrashLoop) instead of looping forever.
DEFAULT_MAX_LEASES = 3

#: Cap on the daemon's in-memory trace buffer (a service alive for days
#: must not grow it without bound; the flight ring keeps the recent tail).
EVENT_BUFFER_MAXLEN = 4096

_CLASS_SANITIZE_RE = re.compile(r"[^a-z0-9_]")


def _metric_class(job_class: str) -> str:
    """A job class as a valid metric-name segment."""
    cleaned = _CLASS_SANITIZE_RE.sub("_", job_class.lower())
    if not cleaned or not cleaned[0].isalpha():
        cleaned = f"c{cleaned}"
    return cleaned


@dataclass
class ServeConfig:
    """Operational knobs for one daemon."""

    state_dir: Path
    spool_dir: Optional[Path] = None
    socket_path: Optional[Path] = None
    #: Intake endpoint spec: ``unix:<path>`` or ``tcp:<host>:<port>``
    #: (``tcp:...:0`` binds an ephemeral port, published in
    #: ``<state>/serve.endpoint``).  Mutually exclusive with
    #: ``socket_path``, which remains as unix-only sugar.
    bind: Optional[str] = None
    workers: int = 2
    queue_limit: int = 64
    poll_interval: float = 0.05
    default_timeout_sec: Optional[float] = None
    drain_timeout_sec: float = 15.0
    max_leases: int = DEFAULT_MAX_LEASES
    breaker_threshold: int = 3
    breaker_cooldown_sec: float = 30.0
    #: Exit gracefully once the service has been completely idle (no
    #: queue, no leases, no intake) for this long.  None = run forever.
    idle_exit_sec: Optional[float] = None
    #: Hard wall-clock cap on the daemon's lifetime (safety for CI).
    max_runtime_sec: Optional[float] = None
    fsync: bool = True
    #: The serve daemon is the long-running "serve era" process: it
    #: self-enables telemetry so the live snapshot/flight-recorder
    #: machinery has real data.  Set False to run dark.
    live_obs: bool = True
    #: Cadence of the background snapshot flusher (state/obs/metrics.json
    #: + metrics.prom); readers treat anything older than 2× this stale.
    snapshot_interval_sec: float = 2.0
    #: Declared per-class SLOs (latency objective + error budget),
    #: evaluated by the flusher each flush window.
    slos: Sequence[SLO] = ()
    #: Attach the wall-clock sampling profiler for the daemon's lifetime;
    #: collapsed stacks land in state/obs/profile.collapsed on drain.
    profile: bool = False
    profile_interval_sec: float = 0.01
    #: Flight-recorder ring capacity (recent spans/events/metric deltas).
    flight_ring: int = 512
    #: Per-frame byte cap on the intake protocol; an oversized frame is
    #: answered ``rejected: frame_too_large`` and the stream resyncs.
    max_frame_bytes: int = MAX_FRAME_BYTES
    #: Per-connection idle deadline: a client that sends no byte (or
    #: stops reading its responses) for this long is evicted so it
    #: cannot pin an intake thread (slow-loris hardening).
    intake_idle_sec: float = 60.0
    #: Retry-after hint handed out while the daemon is shedding with
    #: ``disk_full`` (an OSError/ENOSPC on a WAL or result write path).
    disk_retry_after_sec: float = 5.0
    #: How often a shedding daemon probes the disk (a small fsync'd
    #: write) to decide the fault has cleared.
    disk_probe_interval_sec: float = 1.0

    def __post_init__(self):
        self.state_dir = Path(self.state_dir)
        if self.spool_dir is not None:
            self.spool_dir = Path(self.spool_dir)
        if self.socket_path is not None and self.bind is not None:
            raise ValueError("pass either socket_path or bind, not both")
        if self.bind is not None:
            self.endpoint: Optional[Endpoint] = parse_endpoint(self.bind)
        elif self.socket_path is not None:
            self.socket_path = Path(self.socket_path)
            self.endpoint = parse_endpoint(self.socket_path)
        else:
            self.endpoint = None
        if self.endpoint is not None and self.endpoint.scheme == "unix":
            self.socket_path = self.endpoint.path
        if self.spool_dir is None and self.endpoint is None:
            raise ValueError("need a spool dir and/or an intake endpoint")


class ServeDaemon:
    """See the module docstring; drive with :meth:`run` (or, in tests,
    :meth:`tick` for deterministic single steps)."""

    def __init__(self, config: ServeConfig):
        self.config = config
        self.state_dir = config.state_dir
        self.state_dir.mkdir(parents=True, exist_ok=True)
        # Enable telemetry *before* any instrument is created: configure
        # swaps in a fresh registry, so doing it later would orphan
        # counters.  An already-enabled state (CLI --metrics-out, tests)
        # is left untouched.
        if config.live_obs and not obs.enabled():
            obs.configure(enabled=True)
        if obs.enabled():
            obs.bound_event_buffer(EVENT_BUFFER_MAXLEN)
        self.obs_dir = self.state_dir / "obs"
        self.recorder = FlightRecorder(
            self.obs_dir, ring_size=config.flight_ring
        )
        if obs.enabled():
            obs.set_event_sink(self.recorder.record)
        self.slo_tracker = (
            SLOTracker(list(config.slos)) if config.slos else None
        )
        self.flusher = SnapshotFlusher(
            self.obs_dir,
            interval_sec=config.snapshot_interval_sec,
            service_stats=self.live_service_stats,
            slo_tracker=self.slo_tracker,
            recorder=self.recorder,
        )
        self.profiler = (
            SamplingProfiler(interval_sec=config.profile_interval_sec)
            if config.profile
            else None
        )
        self._lock_file = ProcessLock(self.state_dir / "serve.lock")
        if not self._lock_file.acquire():
            raise RuntimeError(
                f"another serve daemon holds {self.state_dir}/serve.lock"
            )
        self.journal = JobJournal(self.state_dir / "journal", fsync=config.fsync)
        self.queue = AdmissionQueue(limit=config.queue_limit)
        self.breaker = CircuitBreaker(
            failure_threshold=config.breaker_threshold,
            cooldown_sec=config.breaker_cooldown_sec,
            on_open=self._on_breaker_open,
        )
        self.supervisor = Supervisor(
            workers=config.workers, results_dir=self.state_dir / "results"
        )
        self._admission = threading.Lock()
        #: Already-admitted jobs whose class breaker was open at
        #: dispatch time, parked as ``(ready_at_monotonic, request)``
        #: until the breaker half-opens — an accepted job is never
        #: terminally rejected by the breaker.
        self._deferred: List[tuple] = []
        self.draining = False
        #: Degraded admission state (DESIGN.md §15): ``"disk_full"``
        #: after an OSError/ENOSPC on a WAL/result write path.  While
        #: set, admission answers ``rejected: disk_full`` with a
        #: retry-after hint and dispatch pauses; a periodic probe write
        #: clears it once the disk accepts durable writes again.
        self._shedding: Optional[str] = None
        self._disk_probe_at = 0.0
        #: Lease outcomes whose journal append hit the bad disk, parked
        #: for replay once shedding clears (the result files already
        #: exist, so nothing is lost — only not yet durable in the WAL).
        self._unjournaled: List[LeaseEvent] = []
        self._stop_signal: Optional[int] = None
        self._last_activity = time.monotonic()
        self._started_mono = time.monotonic()
        self._started_perf = time.perf_counter()
        self._started_iso = datetime.now(timezone.utc).isoformat()
        self._server_socket: Optional[socket.socket] = None
        self._socket_thread: Optional[threading.Thread] = None
        #: The actually-bound intake endpoint (set by ``_start_socket``;
        #: resolves ``tcp:...:0`` to the kernel-assigned port).
        self.bound: Optional[Endpoint] = None
        self.recovered = self._recover()

    # ------------------------------------------------------------------
    # Crash recovery
    # ------------------------------------------------------------------
    def _recover(self) -> int:
        """Requeue every non-terminal journaled job; returns the count.

        Three refinements over a plain requeue (DESIGN.md §15):

        * **corruption surfacing** — a journal that replayed with
          corrupt records gets a flight-recorder dump naming the
          quarantined segments and suspect jobs;
        * **suspect re-verification** — a job named by a corrupt record
          is only believed ``completed`` if its result artifact's
          checksum holds; otherwise the completion is voided
          (``requeued: result_corrupt_reverify``) and the job re-runs;
        * **artifact repair** — a non-terminal job whose valid
          checksummed result already exists (the SIGKILL landed between
          result-write and journal-append) is journaled ``completed``
          from the artifact instead of being re-executed.
        """
        state = self.journal.state
        if state.corrupt_records:
            self.recorder.dump(
                "journal_corruption",
                {
                    "corrupt_records": state.corrupt_records,
                    "segments": list(state.corrupt_segments),
                    "suspect_jobs": sorted(state.suspect_jobs),
                },
                force=True,
            )
        for job_id in sorted(state.suspect_jobs):
            job = state.jobs.get(job_id)
            if job is None or job.status != "completed":
                continue  # non-terminal suspects requeue below anyway
            path = self.supervisor.result_path_for(job_id)
            payload, verdict = read_result(path)
            if verdict == "valid" and payload.get("status") == "ok":
                continue  # the artifact vouches for the completion
            if verdict == "corrupt":
                quarantine_result(path)
            self.journal.requeued(job_id, "result_corrupt_reverify")
            obs.metrics().counter("serve.read_repairs").inc()
            _log.warning(
                "serve.suspect_completion_voided",
                job_id=job_id,
                result_verdict=verdict,
            )
        repaired = 0
        orphans = self.journal.state.to_requeue()
        requeued = 0
        for record in orphans:
            job_id = record.request["job_id"]
            payload, verdict = read_result(
                self.supervisor.result_path_for(job_id)
            )
            if verdict == "valid" and payload.get("status") == "ok":
                self.journal.completed(
                    job_id,
                    duration_sec=float(payload.get("duration_sec") or 0.0),
                    cache_hit=bool(payload.get("cache_hit")),
                )
                repaired += 1
                continue
            if record.status == "leased":
                # Its lease died with the previous daemon: note the
                # requeue so the journal reflects reality again.
                self.journal.requeued(job_id, "orphaned_lease")
            self.queue.push(record.request, force=True)
            requeued += 1
        if repaired:
            obs.metrics().counter("serve.repaired_from_artifact").inc(repaired)
        if requeued or repaired:
            obs.metrics().counter("serve.recovered").inc(requeued)
            _log.info(
                "serve.recovered",
                jobs=requeued,
                repaired_from_artifact=repaired,
                state_dir=str(self.state_dir),
            )
        return requeued

    # ------------------------------------------------------------------
    # Live telemetry (snapshot flusher / stats verb / flight recorder)
    # ------------------------------------------------------------------
    def _on_breaker_open(self, job_class: str, failures: int) -> None:
        self.recorder.dump(
            "breaker_open",
            {"job_class": job_class, "consecutive_failures": failures},
        )

    def live_service_stats(self) -> Dict[str, Any]:
        """Process-local service state embedded in every live snapshot."""
        in_flight: Dict[str, int] = {}
        for lease in self.supervisor.in_flight():
            cls = lease.request.get("class") or lease.request["kind"]
            in_flight[cls] = in_flight.get(cls, 0) + 1
        now = time.time()
        journal = {
            "records": self.journal.appended_records,
            "lag_sec": (
                round(now - self.journal.last_append_ts, 3)
                if self.journal.last_append_ts is not None
                else None
            ),
            "segments": len(self.journal.segments()),
            "torn_records": self.journal.state.torn_records,
            "corrupt_records": self.journal.state.corrupt_records,
        }
        return {
            "queue_depth": len(self.queue),
            "queue_limit": self.config.queue_limit,
            "workers": self.config.workers,
            "in_flight": in_flight,
            "deferred": len(self._deferred),
            "draining": self.draining,
            "shedding": self._shedding,
            "uptime_sec": round(time.monotonic() - self._started_mono, 3),
            "journal": journal,
            "breakers": self.breaker.states(),
            "counts": self.journal.state.counts(),
        }

    def _stats_payload(self) -> Dict[str, Any]:
        """A full live snapshot, same shape as the flushed metrics.json."""
        payload = {
            "v": LIVE_VERSION,
            "ts": time.time(),
            "pid": os.getpid(),
            "interval_sec": self.config.snapshot_interval_sec,
            "service": self.live_service_stats(),
            "metrics": obs.metrics_snapshot()
            or {"counters": {}, "gauges": {}, "histograms": {}},
        }
        if self.slo_tracker is not None:
            payload["slo"] = self.slo_tracker.status()
        return payload

    def _handle_verb(self, raw: Dict[str, Any]) -> Dict[str, Any]:
        """Answer a control verb frame from the socket (not a job)."""
        verb = str(raw.get("verb"))
        if verb == "stats":
            return {"status": "ok", "stats": self._stats_payload()}
        if verb == "health":
            return {
                "status": "ok",
                "health": {
                    "pid": os.getpid(),
                    "draining": self.draining,
                    "shedding": self._shedding,
                    "uptime_sec": round(
                        time.monotonic() - self._started_mono, 3
                    ),
                    "queue_depth": len(self.queue),
                    "busy_workers": self.supervisor.busy,
                },
            }
        if verb == "fetch":
            return self._handle_fetch(raw)
        return {
            "status": "rejected",
            "reason": "invalid",
            "detail": (
                f"unknown verb {verb!r} (use 'stats', 'health' or 'fetch')"
            ),
        }

    # ------------------------------------------------------------------
    # Result fetch (+ read-repair)
    # ------------------------------------------------------------------
    def _retry_hint(self) -> float:
        return max(self.config.poll_interval * 4, 0.2)

    def _handle_fetch(self, raw: Dict[str, Any]) -> Dict[str, Any]:
        """The ``fetch`` verb: return a job's verified result by id.

        A completed job's result file is checksum-verified on every
        read; a corrupt (or missing) artifact is never served — it is
        quarantined, the journaled completion voided, and the job
        re-executed through the normal queue (read-repair), with the
        client told ``pending: repairing`` so a ``--wait`` fetch
        converges on the repaired result.
        """
        job_id = raw.get("job_id")
        if not isinstance(job_id, str) or not job_id:
            return {
                "status": "rejected",
                "reason": "invalid",
                "detail": "fetch needs a string job_id",
            }
        job = self.journal.state.jobs.get(job_id)
        if job is None:
            return {"status": "not_found", "job_id": job_id}
        if job.status == "completed":
            path = self.supervisor.result_path_for(job_id)
            payload, verdict = read_result(path)
            if verdict == "valid":
                obs.metrics().counter("serve.fetched").inc()
                return {
                    "status": "ok",
                    "job_id": job_id,
                    "state": "completed",
                    "result": payload,
                    "duration_sec": job.duration_sec,
                    "cache_hit": job.cache_hit,
                }
            return self._read_repair(job_id, path, verdict)
        if job.status == "failed":
            return {
                "status": "failed",
                "job_id": job_id,
                "state": "failed",
                "error": job.error,
            }
        if job.status == "rejected":
            response = {
                "status": "rejected",
                "job_id": job_id,
                "state": "rejected",
                "reason": job.reason,
            }
            if job.moved_target is not None:
                response["state"] = "moved"
                response["moved_to"] = job.moved_target
            return response
        return {
            "status": "pending",
            "job_id": job_id,
            "state": job.status,
            "retry_after_sec": self._retry_hint(),
        }

    def _read_repair(
        self, job_id: str, path: Path, verdict: str
    ) -> Dict[str, Any]:
        """Void a completion whose artifact failed its checksum and
        re-execute the job (DESIGN.md §15)."""
        with self._admission:
            job = self.journal.state.jobs.get(job_id)
            if job is not None and job.status == "completed":
                if verdict == "corrupt":
                    quarantine_result(path)
                obs.metrics().counter("serve.read_repairs").inc()
                self.recorder.dump(
                    "result_corrupt",
                    {"job_id": job_id, "verdict": verdict},
                )
                _log.warning(
                    "serve.read_repair", job_id=job_id, result_verdict=verdict
                )
                try:
                    self.journal.requeued(job_id, f"result_corrupt_{verdict}")
                except OSError as exc:
                    self._enter_disk_shedding("journal.requeued", exc)
                    return self._disk_full_response(job_id)
                self.queue.push(job.request, force=True)
        return {
            "status": "pending",
            "job_id": job_id,
            "state": "repairing",
            "retry_after_sec": self._retry_hint(),
        }

    # ------------------------------------------------------------------
    # Disk-full shedding (DESIGN.md §15)
    # ------------------------------------------------------------------
    def _disk_full_response(self, job_id: Optional[str]) -> Dict[str, Any]:
        obs.metrics().counter("serve.disk_full_rejections").inc()
        response = {
            "status": "rejected",
            "reason": "disk_full",
            "retry_after_sec": self.config.disk_retry_after_sec,
        }
        if job_id:
            response["job_id"] = job_id
        return response

    def _enter_disk_shedding(self, op: str, exc: OSError) -> None:
        """Classify a WAL/result write fault into the degraded state."""
        if self._shedding != "disk_full":
            self._shedding = "disk_full"
            obs.metrics().counter("serve.disk_full_entered").inc()
            obs.metrics().gauge("serve.shedding").set(1)
            self.recorder.dump(
                "disk_full",
                {
                    "op": op,
                    "errno": exc.errno,
                    "message": str(exc),
                },
                force=True,
            )
            _log.error("serve.disk_full", op=op, error=str(exc))
        self._disk_probe_at = (
            time.monotonic() + self.config.disk_probe_interval_sec
        )

    def _probe_disk(self) -> bool:
        """While shedding, test the disk with a durable write; True once
        healthy (and clears the state).  True immediately if not
        shedding; False while the probe interval hasn't elapsed."""
        if self._shedding != "disk_full":
            return True
        now = time.monotonic()
        if now < self._disk_probe_at:
            return False
        self._disk_probe_at = now + self.config.disk_probe_interval_sec
        probe = self.state_dir / ".disk_probe"
        try:
            with open(probe, "w", encoding="utf-8") as fh:
                fh.write("x" * 4096)
                fh.flush()
                os.fsync(fh.fileno())
            probe.unlink(missing_ok=True)
            # Drop any partial record a failed flush buffered, then
            # prove the journal itself accepts durable writes again.
            self.journal.reopen()
            self.journal.flush()
        except OSError:
            return False
        self._shedding = None
        obs.metrics().counter("serve.disk_full_cleared").inc()
        obs.metrics().gauge("serve.shedding").set(0)
        _log.info("serve.disk_full_cleared")
        return True

    # ------------------------------------------------------------------
    # Admission (spool scanner and socket threads both land here)
    # ------------------------------------------------------------------
    def admit(self, raw: Any) -> Dict[str, Any]:
        """Admit one raw request object; returns the response dict."""
        try:
            request = normalize_request(
                raw, default_timeout_sec=self.config.default_timeout_sec
            )
        except BadRequest as exc:
            obs.metrics().counter("serve.invalid").inc()
            _log.warning("serve.invalid_request", error=str(exc))
            return {"status": "rejected", "reason": "invalid", "detail": str(exc)}
        with self._admission:
            self._last_activity = time.monotonic()
            # Transport-only flag (never journaled): the fleet manager
            # marks its handoff-recovery resubmissions with it so the
            # moved-tombstone dedupe below lets them through.
            requeue_moved = bool(request.pop("requeue", False))
            job_id = request["job_id"]
            known = self.journal.state.jobs.get(job_id)
            # A *rejected* job (shed, or short-circuited by an open
            # breaker) was never run: resubmitting it after the
            # retry-after hint must be able to succeed, so only
            # pending/leased/completed/failed states dedupe.
            if known is not None and known.status != "rejected":
                return {
                    "status": "duplicate",
                    "job_id": job_id,
                    "state": known.status,
                }
            if (
                known is not None
                and known.moved_target is not None
                and not requeue_moved
            ):
                # A ``moved:<shard>`` tombstone is a rejection in the
                # journal but not a retryable one: the fleet handed this
                # job to another shard, and re-admitting it here would
                # race the new owner and break fleet-wide exactly-once
                # completion.
                return {
                    "status": "duplicate",
                    "job_id": job_id,
                    "state": "moved",
                    "moved_to": known.moved_target,
                }
            resubmit = known is not None
            if self.draining:
                return {
                    "status": "rejected",
                    "job_id": job_id,
                    "reason": "draining",
                    "retry_after_sec": self.config.drain_timeout_sec,
                }
            if self._shedding == "disk_full" and not self._probe_disk():
                # Degraded state: the WAL cannot take durable writes, so
                # no admission promise can be made — shed with a hint
                # instead of crashing (or lying).
                return self._disk_full_response(job_id)
            try:
                return self._admit_locked(request, job_id, resubmit)
            except OSError as exc:
                self._enter_disk_shedding("journal.append", exc)
                known = self.journal.state.jobs.get(job_id)
                if known is not None and not known.terminal:
                    # The ``submitted`` record reached the disk before
                    # the fault: the job is durably admitted, so honour
                    # that promise and queue it rather than shed it.
                    self.queue.push(request, force=True)
                    return {"status": "accepted", "job_id": job_id}
                return self._disk_full_response(job_id)

    def _admit_locked(
        self, request: Dict[str, Any], job_id: str, resubmit: bool
    ) -> Dict[str, Any]:
        """Admission tail (journal writes + queueing); caller holds the
        admission lock and handles OSError → disk-full shedding."""
        job_class = request.get("class") or request["kind"]
        cooldown = self.breaker.remaining_cooldown(job_class)
        if cooldown > 0:
            # Short-circuit *new* work of a repeatedly failing
            # class at the door — never promise "accepted" for a
            # job the breaker would only block at dispatch time.
            hint = round(cooldown, 1)
            if not resubmit:
                self.journal.submitted(request)
            self.journal.rejected(
                job_id, "circuit_open", retry_after_sec=hint
            )
            obs.metrics().counter("serve.circuit_rejected").inc()
            _log.warning(
                "serve.circuit_open",
                job_id=job_id,
                job_class=job_class,
                retry_after_sec=hint,
            )
            return {
                "status": "rejected",
                "job_id": job_id,
                "reason": "circuit_open",
                "retry_after_sec": hint,
            }
        if self.queue.full:
            hint = self.queue.retry_after_hint(self.config.workers)
            if not resubmit:
                self.journal.submitted(request)
            self.journal.rejected(job_id, "overloaded", retry_after_sec=hint)
            obs.metrics().counter("serve.shed").inc()
            _log.warning(
                "serve.shed",
                job_id=job_id,
                queue_depth=len(self.queue),
                retry_after_sec=hint,
            )
            return {
                "status": "rejected",
                "job_id": job_id,
                "reason": "overloaded",
                "retry_after_sec": hint,
            }
        if resubmit:
            self.journal.requeued(job_id, "resubmitted")
        else:
            self.journal.submitted(request)
        self.queue.push(request)
        obs.metrics().counter("serve.admitted").inc()
        return {"status": "accepted", "job_id": job_id}

    # ------------------------------------------------------------------
    # Spool intake
    # ------------------------------------------------------------------
    def _intake_spool(self) -> int:
        spool = self.config.spool_dir
        if spool is None or self.draining or not spool.exists():
            return 0
        admitted = 0
        done = spool / "done"
        for path in sorted(spool.glob("*.jsonl")):
            try:
                lines = path.read_text().splitlines()
            except OSError:
                continue  # mid-rename; next tick gets it
            for line in lines:
                line = line.strip()
                if not line:
                    continue
                try:
                    raw = json.loads(line)
                except json.JSONDecodeError:
                    obs.metrics().counter("serve.invalid").inc()
                    _log.warning("serve.invalid_spool_line", file=path.name)
                    continue
                response = self.admit(raw)
                if response["status"] == "accepted":
                    admitted += 1
                elif response.get("reason") == "disk_full":
                    # Leave the spool file in place: it will be
                    # re-scanned (and deduped) once the disk clears.
                    return admitted
            # Journal writes above are durable; only then is the spool
            # file retired (a crash in between just re-reads it, and the
            # journal dedupes every already-submitted job_id).
            done.mkdir(parents=True, exist_ok=True)
            os.replace(path, done / path.name)
        return admitted

    # ------------------------------------------------------------------
    # Socket intake (unix or TCP, same framed JSONL protocol)
    # ------------------------------------------------------------------
    def _start_socket(self) -> None:
        endpoint = self.config.endpoint
        if endpoint is None:
            return
        server = endpoint.listen(backlog=8)
        server.settimeout(0.2)
        self.bound = bound_endpoint(server, endpoint)
        self._server_socket = server
        # Publish the *actual* endpoint (ephemeral TCP ports resolved)
        # so clients and the fleet manager can find us.
        endpoint_file = self.state_dir / ENDPOINT_FILE
        tmp = endpoint_file.with_suffix(".tmp")
        tmp.write_text(self.bound.describe() + "\n")
        os.replace(tmp, endpoint_file)

        def _serve_connections():
            while self._server_socket is not None:
                try:
                    conn, _ = server.accept()
                except socket.timeout:
                    continue
                except OSError:
                    break
                threading.Thread(
                    target=self._handle_connection, args=(conn,), daemon=True
                ).start()

        self._socket_thread = threading.Thread(
            target=_serve_connections, daemon=True
        )
        self._socket_thread.start()

    def _handle_connection(self, conn: socket.socket) -> None:
        """One intake connection: framed JSONL in, one response per frame.

        Hardened per DESIGN.md §14: a per-connection idle deadline (the
        socket timeout bounds reads *and* the response writes, so both
        a slow-loris sender and a client that stops reading are
        evicted, counted, and closed), a per-frame byte cap answered
        with ``rejected: frame_too_large`` (the assembler resyncs at
        the next newline, so the connection survives), and
        malformed-frame accounting.
        """
        config = self.config
        with conn:
            for kind, payload in read_frames(
                conn,
                max_bytes=config.max_frame_bytes,
                idle_timeout_sec=config.intake_idle_sec,
            ):
                if kind == "idle":
                    obs.metrics().counter("transport.idle_evicted").inc()
                    _log.warning(
                        "serve.intake_idle_evicted",
                        idle_sec=config.intake_idle_sec,
                    )
                    return
                if kind == "too_large":
                    response = frame_too_large_response(
                        config.max_frame_bytes
                    )
                    _log.warning(
                        "serve.frame_too_large", bytes=payload
                    )
                elif not payload.strip():
                    continue
                else:
                    try:
                        raw = json.loads(payload)
                    except json.JSONDecodeError:
                        obs.metrics().counter(
                            "transport.malformed_frames"
                        ).inc()
                        response = {
                            "status": "rejected",
                            "reason": "invalid",
                            "detail": "undecodable JSON frame",
                        }
                    else:
                        if isinstance(raw, dict) and "verb" in raw:
                            response = self._handle_verb(raw)
                        else:
                            response = self.admit(raw)
                try:
                    conn.sendall(encode_frame(response))
                except socket.timeout:
                    # The client stopped draining its responses: a
                    # slow consumer is as dangerous as a slow sender.
                    obs.metrics().counter(
                        "transport.slow_client_evicted"
                    ).inc()
                    _log.warning("serve.intake_slow_client_evicted")
                    return
                except OSError:
                    return

    def _stop_socket(self) -> None:
        server, self._server_socket = self._server_socket, None
        if server is not None:
            server.close()
        if self.config.endpoint is not None:
            self.config.endpoint.cleanup()
        (self.state_dir / ENDPOINT_FILE).unlink(missing_ok=True)

    # ------------------------------------------------------------------
    # Dispatch + lease outcomes
    # ------------------------------------------------------------------
    def _revive_deferred(self) -> None:
        """Move breaker-deferred jobs whose wait is up back in line."""
        if not self._deferred:
            return
        now = time.monotonic()
        ready = [req for at, req in self._deferred if at <= now]
        if not ready:
            return
        self._deferred = [(at, req) for at, req in self._deferred if at > now]
        with self._admission:
            for request in reversed(ready):
                self.queue.push(request, front=True, force=True)

    def _defer(self, request: Dict[str, Any], job_class: str) -> None:
        """Park an admitted job until its class breaker may half-open.

        The job stays ``pending`` in the journal — the daemon made an
        "accepted" promise and keeps it: the job waits out the cooldown
        (or a poll interval, when a half-open probe is already in
        flight) instead of being terminally rejected.
        """
        cooldown = self.breaker.remaining_cooldown(job_class)
        delay = cooldown if cooldown > 0 else max(self.config.poll_interval, 0.05)
        self._deferred.append((time.monotonic() + delay, request))
        obs.metrics().counter("serve.deferred").inc()
        _log.info(
            "serve.deferred",
            job_id=request["job_id"],
            job_class=job_class,
            delay_sec=round(delay, 3),
        )

    def _dispatch(self) -> None:
        if self._shedding is not None:
            # Don't start new work while the disk is sick: a lease that
            # completes now couldn't journal its completion anyway.
            return
        self._revive_deferred()
        while self.supervisor.free_slots() > 0:
            with self._admission:
                request = self.queue.pop()
            if request is None:
                return
            job_class = request.get("class") or request["kind"]
            if not self.breaker.allow(job_class):
                self._defer(request, job_class)
                continue
            state = self.journal.state.jobs.get(request["job_id"])
            lease_no = (state.attempts if state else 0) + 1
            lease = self.supervisor.dispatch(request, lease_no)
            if lease is None:  # every free slot is backing off
                with self._admission:
                    self.queue.push(request, front=True, force=True)
                return
            try:
                self.journal.leased(
                    request["job_id"], lease_no, pid=lease.process.pid
                )
            except OSError as exc:
                # The worker is already running; let it — its result
                # write is idempotent and the completion append will be
                # parked and retried once the disk clears.
                self._enter_disk_shedding("journal.leased", exc)
            self._last_activity = time.monotonic()

    def _observe_outcome(self, event: LeaseEvent, job_class: str) -> None:
        """Feed the per-class latency histogram and the SLO tracker."""
        obs.metrics().log_histogram(
            f"serve.latency_sec.{_metric_class(job_class)}"
        ).observe(event.duration_sec)
        if self.slo_tracker is not None:
            self.slo_tracker.observe(
                job_class,
                event.duration_sec,
                ok=event.outcome == "completed",
            )

    def _handle_event(self, event: LeaseEvent) -> None:
        job_id = event.request["job_id"]
        job_class = event.request.get("class") or event.request["kind"]
        self._last_activity = time.monotonic()
        self._observe_outcome(event, job_class)
        if event.outcome == "completed":
            result = event.result or {}
            self.journal.completed(
                job_id,
                duration_sec=event.duration_sec,
                cache_hit=bool(result.get("cache_hit")),
            )
            self.queue.observe_service_time(event.duration_sec)
            self.breaker.record_success(job_class)
            obs.metrics().counter("serve.completed").inc()
            return
        if event.outcome == "failed":
            error = (event.result or {}).get("error") or {
                "error_type": "UnknownFailure",
                "message": "worker wrote a failed result without an error",
            }
            self.journal.failed(job_id, error)
            self.breaker.record_failure(job_class)
            obs.metrics().counter("serve.failed").inc()
            return
        if event.outcome == "timeout":
            self.journal.failed(
                job_id,
                {
                    "error_type": "TimeoutError",
                    "message": (
                        f"lease exceeded its {event.request.get('timeout_sec')}s "
                        "deadline and was killed"
                    ),
                },
            )
            self.breaker.record_failure(job_class)
            obs.metrics().counter("serve.failed").inc()
            # The supervisor just SIGKILLed this lease — capture the
            # telemetry tail leading up to it.
            self.recorder.dump(
                "lease_killed",
                {
                    "job_id": job_id,
                    "job_class": job_class,
                    "timeout_sec": event.request.get("timeout_sec"),
                    "duration_sec": event.duration_sec,
                },
            )
            return
        # Crash: the worker died without a result.  Requeue (bounded).
        self.recorder.dump(
            "lease_crashed",
            {
                "job_id": job_id,
                "job_class": job_class,
                "exitcode": event.exitcode,
            },
        )
        self.breaker.record_failure(job_class)
        state = self.journal.state.jobs.get(job_id)
        attempts = state.attempts if state else 1
        if attempts >= self.config.max_leases:
            self.journal.failed(
                job_id,
                {
                    "error_type": "WorkerCrashLoop",
                    "message": (
                        f"worker crashed on all {attempts} leases "
                        f"(last exitcode {event.exitcode})"
                    ),
                },
            )
            obs.metrics().counter("serve.failed").inc()
            return
        self.journal.requeued(job_id, f"worker_crash_exit_{event.exitcode}")
        with self._admission:
            self.queue.push(event.request, front=True, force=True)

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def _safe_handle_event(self, event: LeaseEvent) -> None:
        """Handle a lease outcome; a WAL write fault parks the event for
        replay instead of crashing the daemon (the result file already
        exists, so nothing is lost — only not yet durable)."""
        try:
            self._handle_event(event)
        except OSError as exc:
            self._enter_disk_shedding("journal.append", exc)
            self._unjournaled.append(event)

    def _replay_unjournaled(self) -> None:
        if not self._unjournaled or self._shedding is not None:
            return
        events, self._unjournaled = self._unjournaled, []
        for event in events:
            self._safe_handle_event(event)

    def tick(self) -> None:
        """One deterministic scheduling step (tests call this directly)."""
        if self._shedding is not None:
            self._probe_disk()
        self._replay_unjournaled()
        self._intake_spool()
        self._dispatch()
        for event in self.supervisor.poll():
            self._safe_handle_event(event)
        obs.metrics().gauge("serve.busy_workers").set(self.supervisor.busy)

    def _install_signals(self) -> None:
        if threading.current_thread() is not threading.main_thread():
            return

        def _on_signal(signum, frame):
            self._stop_signal = signum

        signal.signal(signal.SIGTERM, _on_signal)
        signal.signal(signal.SIGINT, _on_signal)

    def _should_stop(self) -> bool:
        if self._stop_signal is not None:
            return True
        now = time.monotonic()
        if (
            self.config.max_runtime_sec is not None
            and now - self._started_mono >= self.config.max_runtime_sec
        ):
            _log.warning("serve.max_runtime_reached")
            return True
        if (
            self.config.idle_exit_sec is not None
            and len(self.queue) == 0
            and not self._deferred
            and self.supervisor.busy == 0
            and now - self._last_activity >= self.config.idle_exit_sec
        ):
            _log.info("serve.idle_exit")
            return True
        return False

    def run(self) -> int:
        """Serve until a signal (or idle/max-runtime), then drain; 0 on
        a graceful exit."""
        self._install_signals()
        self._start_socket()
        # The pid file doubles as the *readiness* marker: it appears
        # only once signal handlers are live, so a supervisor (or the
        # chaos campaign) that waits for it can safely SIGTERM — a
        # signal any earlier would hit the interpreter's default
        # disposition and kill the process ungracefully.
        (self.state_dir / "serve.pid").write_text(str(os.getpid()))
        _log.info(
            "serve.started",
            pid=os.getpid(),
            state_dir=str(self.state_dir),
            spool=str(self.config.spool_dir),
            socket=(
                self.bound.describe() if self.bound is not None else None
            ),
            workers=self.config.workers,
            recovered=self.recovered,
        )
        self.flusher.start()
        if self.profiler is not None:
            self.profiler.start()
        try:
            while not self._should_stop():
                self.tick()
                time.sleep(self.config.poll_interval)
        except Exception as exc:
            # The last seconds of telemetry before an unhandled daemon
            # exception are exactly what the autopsy needs.
            self.recorder.dump(
                "unhandled_exception",
                {"error_type": type(exc).__name__, "message": str(exc)},
                force=True,
            )
            raise
        finally:
            self.drain()
        return 0

    # ------------------------------------------------------------------
    # Graceful drain
    # ------------------------------------------------------------------
    def drain(self) -> Path:
        """Stop intake, settle in-flight leases, flush, write manifest."""
        with obs.span(
            "serve.drain",
            signal=self._stop_signal,
            in_flight=self.supervisor.busy,
            queued=len(self.queue),
            deferred=len(self._deferred),
        ):
            self.draining = True
            self._stop_socket()
            deadline = time.monotonic() + self.config.drain_timeout_sec
            while self.supervisor.busy and time.monotonic() < deadline:
                if self._shedding is not None:
                    self._probe_disk()
                self._replay_unjournaled()
                for event in self.supervisor.poll():
                    self._safe_handle_event(event)
                if self.supervisor.busy:
                    time.sleep(self.config.poll_interval)
            # Checkpoint anything still running: kill the worker, requeue
            # the lease — the job stays pending in the journal, so the
            # next daemon picks it up where this one left off.
            for lease in self.supervisor.kill_all():
                try:
                    self.journal.requeued(lease.job_id, "drain_timeout")
                except OSError as exc:
                    self._enter_disk_shedding("journal.requeued", exc)
                _log.warning("serve.drain_requeued", job_id=lease.job_id)
            # One last chance for outcomes parked during a disk fault;
            # whatever still can't be journaled is recoverable on the
            # next start via artifact repair (the result files exist).
            if self._shedding is not None:
                self._disk_probe_at = 0.0
                self._probe_disk()
            self._replay_unjournaled()
            if self._unjournaled:
                _log.error(
                    "serve.drain_unjournaled_outcomes",
                    count=len(self._unjournaled),
                    job_ids=[e.request["job_id"] for e in self._unjournaled],
                )
            if self.profiler is not None:
                self.profiler.stop()
                profile_path = self.profiler.write(
                    self.obs_dir / "profile.collapsed"
                )
                _log.info(
                    "serve.profile_written",
                    path=str(profile_path),
                    samples=self.profiler.samples,
                )
            self.flusher.stop(final_flush=True)
            manifest_path = self._write_manifest()
            try:
                self.journal.close()
            except OSError as exc:
                _log.error("serve.journal_close_failed", error=str(exc))
            self._lock_file.release()
            (self.state_dir / "serve.pid").unlink(missing_ok=True)
            _log.info("serve.drained", manifest=str(manifest_path))
        return manifest_path

    def _write_manifest(self) -> Path:
        rows = [j.manifest_row() for j in self.journal.state.in_order()]
        manifest = RunManifest(
            run_id=new_run_id(),
            command="serve",
            workers=self.config.workers,
            started_at=self._started_iso,
            finished_at=datetime.now(timezone.utc).isoformat(),
            wall_time_sec=round(time.perf_counter() - self._started_perf, 6),
            jobs=rows,
            metrics=obs.metrics_snapshot(),
        )
        return manifest.write(self.state_dir / "manifests")


def serve_forever(config: ServeConfig) -> int:
    """CLI entry: build the daemon and run it to a graceful exit."""
    try:
        daemon = ServeDaemon(config)
    except RuntimeError as exc:
        _log.error("serve.start_failed", error=str(exc))
        return 1
    return daemon.run()
