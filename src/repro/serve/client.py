"""Client helpers: submit jobs to a running daemon, inspect its state.

Two transports, same JSONL payload:

* **spool** — :func:`submit_to_spool` writes a request file atomically
  (tmp + rename) into the watched directory; fire-and-forget, survives
  the daemon being down (the file waits), no response channel beyond
  the journal;
* **socket** — :func:`submit_via_socket` speaks the framed JSONL
  request/response protocol over the daemon's unix *or TCP* endpoint
  and returns one response dict per request (``accepted`` /
  ``rejected`` + retry-after / ``duplicate``).  On a mid-batch
  connection failure it raises
  :class:`repro.serve.transport.ProtocolError` whose ``.responses``
  carries everything already answered, so callers know exactly which
  requests were delivered.  For a lossy wire, wrap the same endpoint
  in :class:`repro.serve.transport.ResilientClient` instead — it adds
  a deadline budget, bounded retries with backoff, and reconnects.

:func:`serve_status` replays the journal read-only — it works on a live
daemon's state dir and on a dead one's (the report then says ``down``
plus the age of the last telemetry snapshot).  Against a fleet state
dir, use :func:`repro.serve.fleet_status` instead (``repro serve
status`` picks automatically).

Against a daemon (or fleet) listening on a unix socket::

    from repro.serve import submit_via_socket, serve_status, format_status

    responses = submit_via_socket(
        "/tmp/ibox-serve/serve.sock",   # or a fleet's .../fleet.sock
        [{"kind": "chaos", "params": {"fault": "sleep"}}],
    )
    assert responses[0]["status"] in ("accepted", "duplicate")
    job_id = responses[0]["job_id"]     # content hash: resubmit-safe

    status = serve_status("/tmp/ibox-serve")   # journal replay, read-only
    print(format_status(status))               # humans; the dict for tools
"""

from __future__ import annotations

import json
import os
import time
import uuid
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence

from repro.serve.journal import JobJournal
from repro.serve.transport import EndpointLike, exchange
from repro.trace.io import PathLike


def submit_to_spool(
    spool_dir: PathLike, requests: Sequence[Dict[str, Any]]
) -> Path:
    """Atomically drop one JSONL file of requests into the spool."""
    spool = Path(spool_dir)
    spool.mkdir(parents=True, exist_ok=True)
    name = f"{time.strftime('%Y%m%d-%H%M%S')}-{uuid.uuid4().hex[:8]}.jsonl"
    tmp = spool / f".{name}.tmp"
    with open(tmp, "w", encoding="utf-8") as fh:
        for request in requests:
            fh.write(json.dumps(request) + "\n")
        fh.flush()
        os.fsync(fh.fileno())
    path = spool / name
    os.replace(tmp, path)
    return path


def submit_via_socket(
    socket_path: EndpointLike,
    requests: Sequence[Dict[str, Any]],
    timeout: float = 10.0,
) -> List[Dict[str, Any]]:
    """Send requests over the daemon's endpoint; one response each.

    ``socket_path`` is a unix socket path or any ``unix:<path>`` /
    ``tcp:<host>:<port>`` endpoint spec.  One-shot: a mid-batch
    connection failure raises :class:`~repro.serve.transport
    .ProtocolError` (a :class:`ConnectionError`) whose ``.responses``
    holds the already-delivered answers.
    """
    return exchange(socket_path, requests, timeout=timeout)


def query_daemon(
    socket_path: EndpointLike, verb: str = "stats", timeout: float = 10.0
) -> Dict[str, Any]:
    """Ask a live daemon a control verb (``stats`` / ``health``)."""
    responses = submit_via_socket(socket_path, [{"verb": verb}], timeout)
    return responses[0]


def fetch_result(
    socket_path: EndpointLike,
    job_id: str,
    timeout: float = 10.0,
) -> Dict[str, Any]:
    """One-shot ``fetch`` of a job's (checksum-verified) result.

    Works against a single daemon's endpoint or a fleet router (which
    hashes the job_id to its owning shard and fans out when the ring
    moved).  Responses: ``ok`` with the ``result`` payload, ``pending``
    (queued/leased/repairing, with a retry-after hint), ``failed``,
    ``rejected``, or ``not_found``.  For retries, waiting, and deadline
    budgets use :meth:`repro.serve.transport.ResilientClient.fetch`.
    """
    responses = submit_via_socket(
        socket_path, [{"verb": "fetch", "job_id": job_id}], timeout
    )
    return responses[0]


def read_live_snapshot(state_dir: PathLike) -> Optional[Dict[str, Any]]:
    """The flusher-published live snapshot, plus its age; None if absent."""
    path = Path(state_dir) / "obs" / "metrics.json"
    try:
        snapshot = json.loads(path.read_text())
    except (FileNotFoundError, json.JSONDecodeError, OSError):
        return None
    if not isinstance(snapshot, dict):
        return None
    snapshot["age_sec"] = round(time.time() - snapshot.get("ts", 0.0), 3)
    return snapshot


def serve_status(state_dir: PathLike) -> Dict[str, Any]:
    """Journal-derived service state: counts plus per-job statuses.

    When the daemon's snapshot flusher has published
    ``<state>/obs/metrics.json``, a ``live`` section is attached with
    queue depth, per-class in-flight counts, and the snapshot age —
    near-real-time state that journal replay alone cannot provide.
    """
    state_dir = Path(state_dir)
    state = JobJournal.read_state(state_dir / "journal")
    pid_file = state_dir / "serve.pid"
    pid = None
    if pid_file.exists():
        try:
            pid = int(pid_file.read_text().strip())
        except ValueError:
            pid = None
    # A daemon is "up" only if its pid marker names a live process; a
    # SIGKILL leaves the marker behind, so the pid alone is not enough.
    daemon = "down"
    if pid is not None:
        try:
            os.kill(pid, 0)
            daemon = "up"
        except ProcessLookupError:
            daemon = "down"
        except PermissionError:  # exists, but owned by someone else
            daemon = "up"
    status: Dict[str, Any] = {
        "state_dir": str(state_dir),
        "pid": pid,
        "daemon": daemon,
        "counts": state.counts(),
        "torn_records": state.torn_records,
        "corrupt_records": state.corrupt_records,
        "corrupt_segments": list(state.corrupt_segments),
        "suspect_jobs": sorted(state.suspect_jobs),
        "jobs": [
            {
                "job_id": j.request["job_id"],
                "label": j.request.get("label"),
                "status": j.status,
                "attempts": j.attempts,
                "completions": j.completions,
            }
            for j in state.in_order()
        ],
    }
    snapshot = read_live_snapshot(state_dir)
    if snapshot is not None:
        service = snapshot.get("service") or {}
        status["live"] = {
            "snapshot_age_sec": snapshot["age_sec"],
            "queue_depth": service.get("queue_depth"),
            "in_flight": service.get("in_flight") or {},
            "draining": service.get("draining"),
            "uptime_sec": service.get("uptime_sec"),
        }
    return status


def format_status(status: Dict[str, Any]) -> str:
    counts = status["counts"]
    daemon = status.get("daemon")
    head = f"serve state {status['state_dir']}"
    if daemon == "up":
        head += f" — up (pid {status['pid']})"
    elif daemon == "down":
        head += " — down"
    elif status.get("pid"):
        head += f" (pid {status['pid']})"
    lines = [
        head,
        "  "
        + " ".join(f"{k}={v}" for k, v in counts.items()),
    ]
    live = status.get("live")
    if live and daemon == "down":
        # Dead daemon: the snapshot below is the last thing it
        # published, not the current state — flag its age first.
        age = live.get("snapshot_age_sec")
        if age is not None:
            lines.append(f"  down; last snapshot {age:.1f}s ago")
    if live:
        in_flight = live.get("in_flight") or {}
        detail = " ".join(
            f"{cls}={n}" for cls, n in sorted(in_flight.items())
        )
        age = live.get("snapshot_age_sec")
        lines.append(
            f"  live: queue_depth={live.get('queue_depth')} "
            f"in_flight={sum(in_flight.values())}"
            + (f" ({detail})" if detail else "")
            + (f" snapshot_age={age:.1f}s" if age is not None else "")
        )
    if status.get("torn_records"):
        lines.append(f"  torn journal records dropped: {status['torn_records']}")
    if status.get("corrupt_records"):
        segments = ",".join(status.get("corrupt_segments") or []) or "?"
        lines.append(
            f"  CORRUPT journal records skipped: {status['corrupt_records']} "
            f"(segments: {segments}; see journal/quarantine/)"
        )
    for job in status["jobs"]:
        lines.append(
            f"  {job['status']:<9} attempts={job['attempts']} "
            f"{job['label']}"
        )
    return "\n".join(lines)
