"""repro.serve — a crash-tolerant, supervised simulation service.

The long-running counterpart to ``repro batch`` (DESIGN.md §10): a
``repro serve run`` daemon accepts fit/simulate/experiment job requests
as JSONL over a watched spool directory or a unix socket, journals each
one to a durable fsync'd WAL before acting on it, and executes leases
in supervised worker processes with heartbeats, deadline kills, and
crash backoff.  After a SIGKILL the journal replay requeues every
orphaned lease; completed jobs are never re-run.  SIGTERM/SIGINT drain
gracefully: intake stops, leases settle or are checkpointed, and a
complete run manifest is written before exit 0.

For horizontal scale, ``repro serve fleet`` runs N of those daemons
behind one consistent-hashing router socket (DESIGN.md §13): each shard
keeps its own state dir and every §10 invariant, while the fleet layer
adds routing, shard-death handoff, restart with re-admission, and a
cross-shard status roll-up.  OPERATIONS.md is the operator's manual.

Quickstart::

    # terminal 1 — the service (single daemon ...)
    repro serve run --state /tmp/svc --spool /tmp/svc/spool --workers 2
    # ... or a routed 3-shard fleet)
    repro serve fleet --state /tmp/fleet --shards 3

    # terminal 2 — a client (same protocol either way)
    repro serve submit --socket /tmp/fleet/fleet.sock \
        '{"kind": "simulate", "params": {...}}'
    repro serve status --state /tmp/fleet

Programmatic use mirrors the CLI::

    from repro.serve import ServeConfig, ServeDaemon, submit_to_spool

    config = ServeConfig(state_dir=state, spool_dir=spool, workers=2)
    daemon = ServeDaemon(config)   # replays the journal, requeues orphans
    daemon.run()                   # blocks until signalled, then drains
"""

from repro.serve.breaker import CLOSED, HALF_OPEN, OPEN, CircuitBreaker
from repro.serve.client import (
    fetch_result,
    format_status,
    query_daemon,
    read_live_snapshot,
    serve_status,
    submit_to_spool,
    submit_via_socket,
)
from repro.serve.daemon import ServeConfig, ServeDaemon, serve_forever
from repro.serve.fleet import (
    FleetConfig,
    FleetManager,
    ShardHandle,
    fleet_forever,
    fleet_status,
    format_fleet_status,
    is_fleet_state,
)
from repro.serve.journal import (
    JobJournal,
    JobRecord,
    JournalState,
    record_crc_ok,
    seal_record,
)
from repro.serve.queue import AdmissionQueue
from repro.serve.requests import (
    BadRequest,
    normalize_request,
    request_to_spec,
    resolve_worker,
)
from repro.serve.router import FleetRouter, HashRing
from repro.serve.supervisor import (
    Lease,
    LeaseEvent,
    Supervisor,
    quarantine_result,
    read_result,
)
from repro.serve.transport import (
    MAX_FRAME_BYTES,
    DeadlineExceeded,
    Endpoint,
    FrameTooLargeError,
    ProtocolError,
    ResilientClient,
    RetryBudgetExceeded,
    RetryPolicy,
    TransportError,
    parse_endpoint,
)

__all__ = [
    "AdmissionQueue",
    "BadRequest",
    "CircuitBreaker",
    "CLOSED",
    "HALF_OPEN",
    "OPEN",
    "DeadlineExceeded",
    "Endpoint",
    "FrameTooLargeError",
    "MAX_FRAME_BYTES",
    "ProtocolError",
    "ResilientClient",
    "RetryBudgetExceeded",
    "RetryPolicy",
    "TransportError",
    "parse_endpoint",
    "FleetConfig",
    "FleetManager",
    "FleetRouter",
    "HashRing",
    "JobJournal",
    "JobRecord",
    "JournalState",
    "Lease",
    "LeaseEvent",
    "ServeConfig",
    "ServeDaemon",
    "ShardHandle",
    "Supervisor",
    "fetch_result",
    "fleet_forever",
    "fleet_status",
    "format_fleet_status",
    "format_status",
    "is_fleet_state",
    "normalize_request",
    "quarantine_result",
    "query_daemon",
    "read_live_snapshot",
    "read_result",
    "record_crc_ok",
    "request_to_spec",
    "resolve_worker",
    "seal_record",
    "serve_forever",
    "serve_status",
    "submit_to_spool",
    "submit_via_socket",
]
