"""Job requests: the JSONL wire format the serve daemon accepts.

A request is one JSON object per line, over the spool directory or the
unix socket::

    {"kind": "simulate", "params": {...}, "label": "...",
     "timeout_sec": 30.0, "class": "interactive", "job_id": "..."}

Only ``kind`` (+ JSON-able ``params``) is required.  ``job_id`` defaults
to the content hash of kind+params — the same identity scheme as
:mod:`repro.runtime.jobs`, which is what makes resubmission after a
crash idempotent.  ``timeout_sec`` is the client's deadline and is
propagated into :attr:`JobSpec.timeout_sec`; ``class`` groups jobs for
the circuit breaker (default: the kind).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional

from repro.runtime.jobs import JobSpec, content_hash


class BadRequest(ValueError):
    """A request the daemon cannot admit (malformed kind/params/...)."""


def resolve_worker(kind: str) -> Callable[[JobSpec], Any]:
    """The worker callable for a request kind.

    The stock batch workers (fit/simulate/experiment) plus the chaos
    drill worker, so fault campaigns can exercise the service with
    controllable sleep/crash/hang jobs.
    """
    from repro.guard.chaos import chaos_worker
    from repro.runtime.batch import worker_for

    if kind == "chaos":
        return chaos_worker
    return worker_for(kind)


def known_kinds() -> tuple:
    from repro.runtime.batch import WORKER_KINDS

    return (*WORKER_KINDS, "chaos")


def normalize_request(
    raw: Any, default_timeout_sec: Optional[float] = None
) -> Dict[str, Any]:
    """Validate + canonicalise one raw request object.

    Raises :class:`BadRequest` on anything that cannot become a
    :class:`JobSpec`; the daemon turns that into a ``rejected: invalid``
    response instead of dying.
    """
    if not isinstance(raw, dict):
        raise BadRequest(f"request must be a JSON object, got {type(raw).__name__}")
    kind = raw.get("kind")
    if not isinstance(kind, str) or kind not in known_kinds():
        raise BadRequest(f"unknown job kind: {kind!r}")
    params = raw.get("params", {})
    if not isinstance(params, dict):
        raise BadRequest("params must be a JSON object")
    timeout = raw.get("timeout_sec", default_timeout_sec)
    if timeout is not None:
        try:
            timeout = float(timeout)
        except (TypeError, ValueError):
            raise BadRequest(f"timeout_sec must be a number: {timeout!r}")
        if timeout <= 0:
            raise BadRequest("timeout_sec must be positive")
    job_id = raw.get("job_id") or content_hash(kind, params)
    label = raw.get("label") or f"{kind}:{params.get('trace_path', job_id[:12])}"
    job_class = raw.get("class") or kind
    request = {
        "kind": kind,
        "params": params,
        "job_id": str(job_id),
        "label": str(label),
        "timeout_sec": timeout,
        "class": str(job_class),
    }
    if raw.get("requeue"):
        # Fleet-internal: the manager flags handoff-recovery
        # resubmissions so a ``moved`` tombstone does not dedupe them.
        # The daemon strips the flag at admission; it is never journaled.
        request["requeue"] = True
    return request


def request_to_spec(request: Dict[str, Any]) -> JobSpec:
    """A normalised request as the executor-facing :class:`JobSpec`."""
    return JobSpec(
        kind=request["kind"],
        job_id=request["job_id"],
        label=request["label"],
        params=request["params"],
        timeout_sec=request.get("timeout_sec"),
    )
