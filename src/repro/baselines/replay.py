"""Raw trace-driven replay baseline.

Replays the *recorded* network behaviour onto a new sender: packet ``k`` of
the new flow receives the delay that packet ``k`` (by send order) received
in the recorded trace, and is lost if that packet was lost.  This is the
[33, 34]-style approach the paper's §1/§7 criticises: "it does not capture
the impact on the network of the application or protocol under test (e.g.,
it might congest the network, invalidating the delay measurements)".

The baseline is useful precisely because it is wrong in an instructive
way: a treatment protocol that sends much faster than the recorded one
sees the *recorded* delays rather than the queue it would actually build.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.trace.records import PacketRecord, Trace


@dataclass(frozen=True)
class ReplayModel:
    """The recorded per-packet delay/loss schedule."""

    delays: np.ndarray  # seconds; nan = lost
    source_flow_id: str

    def apply(self, input_trace: Trace) -> Trace:
        """Impose the recorded schedule on a new input packet stream.

        If the new stream is longer than the recording, the schedule wraps
        around (common practice in replay tools).
        """
        n_schedule = len(self.delays)
        if n_schedule == 0:
            raise ValueError("empty replay schedule")
        records = []
        for k, r in enumerate(input_trace.records):
            delay = self.delays[k % n_schedule]
            records.append(
                PacketRecord(
                    uid=r.uid,
                    seq=r.seq,
                    size=r.size,
                    sent_at=r.sent_at,
                    delivered_at=(
                        float("nan") if np.isnan(delay) else r.sent_at + delay
                    ),
                    is_retransmit=r.is_retransmit,
                )
            )
        return Trace(
            f"replay-{input_trace.flow_id}",
            records,
            duration=input_trace.duration,
            protocol=input_trace.protocol,
            metadata={**input_trace.metadata, "model": "replay"},
        )


def fit_replay_model(trace: Trace) -> ReplayModel:
    """Extract the replay schedule from a recorded trace."""
    return ReplayModel(delays=trace.delays.copy(), source_flow_id=trace.flow_id)
