"""The calibrated-emulator baseline with statistical packet loss [45].

Pantheon's calibrated emulators match a path's static character but model
the effect of everything else — including cross traffic — as a calibrated
constant packet-loss rate.  Fig. 3(b) shows this "yields a worse match with
the ground truth than iBoxNet", motivating explicit cross-traffic modeling.

Implementation: fit the same §3 static parameters, measure the training
trace's empirical loss rate, and configure the emulator with i.i.d. loss
and *no* CT injector.
"""

from __future__ import annotations

from repro.core.iboxnet import IBoxNetModel, fit
from repro.trace.records import Trace


def fit_statistical_loss_model(
    trace: Trace,
    bandwidth_window: float = 1.0,
    max_delay_percentile: float = 100.0,
) -> IBoxNetModel:
    """Learn the [45]-style baseline from one trace.

    The calibrated loss rate is the trace's empirical loss rate; cross
    traffic is deliberately not modelled.
    """
    model = fit(
        trace,
        bandwidth_window=bandwidth_window,
        max_delay_percentile=max_delay_percentile,
    )
    return model.with_statistical_loss(trace.loss_rate)
