"""Baselines the paper compares against.

* :mod:`repro.baselines.statistical_loss` — the calibrated-emulator
  baseline of [45]: static parameters plus an i.i.d. packet-loss rate
  instead of a cross-traffic model (Fig. 3b).
* :mod:`repro.baselines.replay` — raw trace-driven replay ([33, 34]
  style): re-impose the recorded delay/loss sequence on a new sender,
  ignoring the new sender's impact on the network — the §7 criticism this
  baseline exists to demonstrate.
"""

from repro.baselines.statistical_loss import fit_statistical_loss_model
from repro.baselines.replay import ReplayModel, fit_replay_model

__all__ = [
    "ReplayModel",
    "fit_replay_model",
    "fit_statistical_loss_model",
]
