"""Zero-dependency wall-clock sampling profiler → collapsed stacks.

A background thread wakes every ``interval_sec``, grabs every Python
thread's current frame via ``sys._current_frames()``, and walks the
``f_back`` chain into a ``module:function`` stack tuple.  Identical
stacks accumulate a count; :meth:`SamplingProfiler.collapsed` renders
the standard *collapsed-stack* flamegraph text format (one
``frame;frame;frame count`` line per unique stack), which
``flamegraph.pl``, speedscope, and most flamegraph viewers ingest
directly.

Wall-clock sampling (as opposed to ``cProfile``-style tracing) has two
properties that matter for the serve daemon and the bench harness:

* overhead is bounded by the sampling rate, not the call rate — the
  default 10ms interval (100 Hz, the same default as py-spy) keeps the
  slowdown under 5% even on call-heavy paths (each sample costs a few
  µs, but every wakeup also forces a GIL handoff, which is the part
  that actually shows up), so it is safe to leave attached to a
  production daemon;
* blocked time (lock waits, ``select``, child-process waits) is
  sampled like any other time, which is exactly what you want when
  diagnosing a stuck service.

Attach via ``repro serve run --profile`` / ``repro bench run --profile``
or directly::

    from repro.obs.profile import SamplingProfiler

    with SamplingProfiler() as prof:
        work()
    prof.write("profile.collapsed")
"""

from __future__ import annotations

import os
import sys
import threading
import time
from pathlib import Path
from typing import Dict, Optional, Tuple

#: Default sampling interval: 10ms = 100 samples/sec.
DEFAULT_INTERVAL_SEC = 0.01

#: Hard cap on accumulated samples (bounds memory on week-long runs).
DEFAULT_MAX_SAMPLES = 1_000_000


def _frame_label(frame) -> str:
    module = frame.f_globals.get("__name__", "?")
    return f"{module}:{frame.f_code.co_name}"


class SamplingProfiler:
    """Thread-stack sampler producing collapsed flamegraph text."""

    def __init__(
        self,
        interval_sec: float = DEFAULT_INTERVAL_SEC,
        max_samples: int = DEFAULT_MAX_SAMPLES,
        max_depth: int = 128,
    ):
        if not interval_sec > 0:
            raise ValueError("interval_sec must be > 0")
        self.interval_sec = interval_sec
        self.max_samples = max_samples
        self.max_depth = max_depth
        self.samples = 0
        self._stacks: Dict[Tuple[str, ...], int] = {}
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._started_at: Optional[float] = None
        self.wall_sec = 0.0

    # -- lifecycle -------------------------------------------------------
    def start(self) -> "SamplingProfiler":
        if self._thread is not None:
            return self
        self._stop.clear()
        self._started_at = time.perf_counter()
        self._thread = threading.Thread(
            target=self._run, name="obs-profiler", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> "SamplingProfiler":
        self._stop.set()
        thread, self._thread = self._thread, None
        if thread is not None:
            thread.join(timeout=self.interval_sec * 10 + 1.0)
        if self._started_at is not None:
            self.wall_sec += time.perf_counter() - self._started_at
            self._started_at = None
        return self

    def __enter__(self) -> "SamplingProfiler":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.stop()
        return False

    # -- sampling --------------------------------------------------------
    def _run(self) -> None:
        own_id = threading.get_ident()
        while not self._stop.wait(self.interval_sec):
            if self.samples >= self.max_samples:
                return
            self.sample_once(skip_ident=own_id)

    def sample_once(self, skip_ident: Optional[int] = None) -> int:
        """Take one sample of every live thread; returns stacks recorded."""
        recorded = 0
        try:
            frames = sys._current_frames()
        except Exception:
            return 0
        for ident, frame in frames.items():
            if ident == skip_ident:
                continue
            stack = []
            depth = 0
            while frame is not None and depth < self.max_depth:
                stack.append(_frame_label(frame))
                frame = frame.f_back
                depth += 1
            if not stack:
                continue
            key = tuple(reversed(stack))  # outermost first
            with self._lock:
                self._stacks[key] = self._stacks.get(key, 0) + 1
                self.samples += 1
            recorded += 1
        return recorded

    # -- output ----------------------------------------------------------
    def collapsed(self) -> str:
        """Collapsed-stack text: one ``a;b;c count`` line per stack."""
        with self._lock:
            items = sorted(
                self._stacks.items(), key=lambda kv: (-kv[1], kv[0])
            )
        return "\n".join(
            f"{';'.join(stack)} {count}" for stack, count in items
        ) + ("\n" if items else "")

    def write(self, path) -> Path:
        """Atomically write the collapsed stacks; returns the path."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(f"{path.suffix}.tmp.{os.getpid()}")
        tmp.write_text(self.collapsed())
        os.replace(tmp, path)
        return path

    def top_functions(self, limit: int = 10) -> list:
        """(label, inclusive_samples) for the hottest leaf frames."""
        leaves: Dict[str, int] = {}
        with self._lock:
            for stack, count in self._stacks.items():
                leaf = stack[-1]
                leaves[leaf] = leaves.get(leaf, 0) + count
        return sorted(leaves.items(), key=lambda kv: -kv[1])[:limit]
