"""Global observability state and the process-boundary plumbing.

One module-level :class:`ObsState` holds the active registry, tracer,
and logging configuration.  Everything instrumented in the codebase
goes through three accessors — :func:`span`, :func:`metrics`,
:func:`get_logger` — which read the state *at call time*, so:

* disabled (the default) costs a dict-free attribute check and returns
  shared no-op stubs;
* :func:`configure` (the CLI) or a test can enable/redirect telemetry
  at any point;
* :func:`activate_context` can swap in a fresh, isolated state inside a
  worker process and collect its telemetry for the parent to merge.

The cross-process contract (used by :mod:`repro.runtime.executor`):

1. parent calls :func:`current_context` -> small picklable dict with
   the trace id and the submitting span's id;
2. worker wraps the job in ``with activate_context(ctx) as collected:``
   — spans/metrics/events recorded inside land in a private state
   seeded with the parent's trace identity;
3. worker returns ``collected.telemetry()`` with the job result;
4. parent calls :func:`merge_telemetry` to fold events and metrics in.
"""

from __future__ import annotations

import collections
import contextlib
import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, IO, List, Optional, Union

from repro.obs.logger import LEVELS, StructuredLogger, level_number
from repro.obs.metrics import (
    NULL_REGISTRY,
    MetricsRegistry,
    NullRegistry,
)
from repro.obs.tracing import NULL_SPAN, NullSpan, Span, Tracer


@dataclass
class ObsState:
    """Everything the accessors consult; one active instance per process."""

    enabled: bool = False
    #: Render log events to ``log_stream``?  Worker processes set this
    #: False so console output is not interleaved across the pool.
    console: bool = True
    log_level: int = LEVELS["info"]
    log_format: str = "human"
    log_stream: Optional[IO[str]] = None  # None -> sys.stderr at emit time
    registry: MetricsRegistry = field(default_factory=MetricsRegistry)
    tracer: Tracer = field(default_factory=Tracer)
    trace_out: Optional[Path] = None
    metrics_out: Optional[Path] = None


_STATE = ObsState()


def _state() -> ObsState:
    return _STATE


# ----------------------------------------------------------------------
# Configuration
# ----------------------------------------------------------------------
def configure(
    enabled: Optional[bool] = None,
    log_level: Optional[str] = None,
    log_format: Optional[str] = None,
    log_stream: Optional[IO[str]] = None,
    trace_out: Optional[Union[str, Path]] = None,
    metrics_out: Optional[Union[str, Path]] = None,
) -> None:
    """Reconfigure telemetry for this process.

    Enabling starts a **fresh** trace (new trace id, empty event buffer
    and registry); disabling drops buffered telemetry.  Omitted
    arguments leave the corresponding setting untouched.
    """
    if log_format is not None:
        if log_format not in ("human", "jsonl"):
            raise ValueError(
                f"unknown log format {log_format!r}; use 'human' or 'jsonl'"
            )
        _STATE.log_format = log_format
    if log_level is not None:
        _STATE.log_level = level_number(log_level)
    if log_stream is not None:
        _STATE.log_stream = log_stream
    if trace_out is not None:
        _STATE.trace_out = Path(trace_out)
    if metrics_out is not None:
        _STATE.metrics_out = Path(metrics_out)
    if enabled is not None and enabled != _STATE.enabled:
        _STATE.enabled = enabled
        _STATE.registry = MetricsRegistry()
        _STATE.tracer = Tracer()
        if not enabled:
            _STATE.trace_out = None
            _STATE.metrics_out = None


def reset() -> None:
    """Restore the defaults (used by tests and CLI teardown)."""
    global _STATE
    _STATE = ObsState()


def enabled() -> bool:
    return _STATE.enabled


# ----------------------------------------------------------------------
# The three instrumentation accessors
# ----------------------------------------------------------------------
def span(name: str, **attrs: Any) -> Union[Span, NullSpan]:
    """Context manager measuring one ``subsystem.stage``; no-op if disabled."""
    if not _STATE.enabled:
        return NULL_SPAN
    return _STATE.tracer.span(name, **attrs)


def metrics() -> Union[MetricsRegistry, NullRegistry]:
    """The active registry (no-op stub when disabled)."""
    return _STATE.registry if _STATE.enabled else NULL_REGISTRY


def get_logger(name: str) -> StructuredLogger:
    """A structured logger bound to the live global state."""
    return StructuredLogger(name, _state)


# ----------------------------------------------------------------------
# Introspection / export
# ----------------------------------------------------------------------
def events() -> List[dict]:
    """A copy of the buffered events (spans + log events)."""
    return list(_STATE.tracer.events) if _STATE.enabled else []


def trace_id() -> Optional[str]:
    return _STATE.tracer.trace_id if _STATE.enabled else None


def metrics_snapshot() -> Optional[dict]:
    """The registry snapshot, or ``None`` when telemetry is disabled."""
    return _STATE.registry.snapshot() if _STATE.enabled else None


def set_event_sink(sink) -> None:
    """Install (or clear, with ``None``) a tap on finished trace records.

    The sink is called with every finished span/log-event dict in
    addition to normal buffering; the flight recorder uses this to feed
    its ring.  Applies to the *current* tracer, so install after
    :func:`configure`.
    """
    _STATE.tracer.sink = sink


def bound_event_buffer(maxlen: int) -> None:
    """Cap the trace event buffer (drop-oldest) for long-running daemons.

    The default unbounded list is right for batch runs that flush on
    exit; a daemon alive for days would grow it without limit, so the
    serve runtime swaps in a ``deque(maxlen=...)`` — ``flush`` and
    ``merge_telemetry`` only need append/extend/iterate, which deques
    provide.
    """
    tracer = _STATE.tracer
    tracer.events = collections.deque(tracer.events, maxlen=maxlen)


def flush(
    trace_out: Optional[Union[str, Path]] = None,
    metrics_out: Optional[Union[str, Path]] = None,
) -> Dict[str, Path]:
    """Write buffered events (JSONL) and the metrics snapshot (JSON).

    Destinations default to the configured ``--trace-out`` /
    ``--metrics-out`` paths; returns ``{"trace": path, "metrics": path}``
    for whatever was written.  A disabled state writes nothing.
    """
    written: Dict[str, Path] = {}
    if not _STATE.enabled:
        return written
    trace_path = Path(trace_out) if trace_out else _STATE.trace_out
    metrics_path = Path(metrics_out) if metrics_out else _STATE.metrics_out
    if trace_path is not None:
        trace_path.parent.mkdir(parents=True, exist_ok=True)
        tmp = trace_path.with_suffix(f"{trace_path.suffix}.tmp.{os.getpid()}")
        with tmp.open("w") as handle:
            for event in _STATE.tracer.events:
                handle.write(json.dumps(event) + "\n")
        os.replace(tmp, trace_path)
        written["trace"] = trace_path
    if metrics_path is not None:
        written["metrics"] = _STATE.registry.write_json(metrics_path)
    return written


# ----------------------------------------------------------------------
# Cross-process propagation
# ----------------------------------------------------------------------
def current_context() -> Optional[Dict[str, Any]]:
    """A picklable capsule of the caller's trace identity (or ``None``)."""
    if not _STATE.enabled:
        return None
    return {
        "enabled": True,
        "trace_id": _STATE.tracer.trace_id,
        "parent_span_id": _STATE.tracer.current_span_id(),
        "log_level": _STATE.log_level,
    }


class _Collected:
    """Handle yielded by :func:`activate_context`; filled on exit."""

    __slots__ = ("_events", "_metrics")

    def __init__(self) -> None:
        self._events: List[dict] = []
        self._metrics: Optional[dict] = None

    def telemetry(self) -> Optional[dict]:
        if self._metrics is None and not self._events:
            return None
        return {"events": self._events, "metrics": self._metrics}


@contextlib.contextmanager
def activate_context(ctx: Optional[Dict[str, Any]]):
    """Adopt a parent's trace identity inside a worker process.

    Installs a fresh state (private registry + tracer seeded with the
    parent's ``trace_id``/``parent_span_id``), yields a
    :class:`_Collected` whose :meth:`~_Collected.telemetry` is valid
    after the block, then restores the previous state.  With a falsy
    ``ctx`` this is a transparent no-op (yields ``None``).
    """
    global _STATE
    if not ctx or not ctx.get("enabled"):
        yield None
        return
    previous = _STATE
    _STATE = ObsState(
        enabled=True,
        console=False,
        log_level=ctx.get("log_level", LEVELS["info"]),
        tracer=Tracer(
            trace_id=ctx["trace_id"],
            root_parent_id=ctx.get("parent_span_id"),
        ),
    )
    collected = _Collected()
    try:
        yield collected
    finally:
        collected._events = _STATE.tracer.events
        collected._metrics = _STATE.registry.snapshot()
        _STATE = previous


def merge_telemetry(telemetry: Optional[dict]) -> None:
    """Fold a worker's collected telemetry into this process's state."""
    if not telemetry or not _STATE.enabled:
        return
    _STATE.tracer.events.extend(telemetry.get("events") or [])
    _STATE.registry.merge_snapshot(telemetry.get("metrics"))
