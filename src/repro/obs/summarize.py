"""Render per-stage timing tables from event logs, manifests, metrics.

``repro obs summarize <path>`` accepts any artefact a telemetry-enabled
run leaves behind and picks the right view by sniffing the content:

* a **JSONL event log** (``--trace-out``) -> per-stage span table
  (count, errors, total/mean/p50/p95/max wall time) plus a structured
  log-event tally;
* a **run manifest** (``manifest-<run_id>.json``) -> per-job table and,
  when the manifest embeds a metrics snapshot, the metrics view below;
* a **metrics snapshot** (``--metrics-out``) -> counters, gauges, and
  histogram summaries.
"""

from __future__ import annotations

import json
import math
from collections import defaultdict
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from repro.obs.metrics import MetricsRegistry, histogram_from_snapshot


# ----------------------------------------------------------------------
# Loading
# ----------------------------------------------------------------------
def load_events(path) -> List[dict]:
    """Parse a JSONL event log, skipping malformed lines."""
    events: List[dict] = []
    with Path(path).open() as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue
            if isinstance(record, dict):
                events.append(record)
    return events


# ----------------------------------------------------------------------
# Aggregation
# ----------------------------------------------------------------------
def span_stats(events: Sequence[dict]) -> List[dict]:
    """Aggregate ``type == "span"`` records into per-name timing rows."""
    by_name: Dict[str, List[dict]] = defaultdict(list)
    for event in events:
        if event.get("type") == "span" and "wall_sec" in event:
            by_name[event["name"]].append(event)
    rows = []
    for name, spans in by_name.items():
        walls = sorted(s["wall_sec"] for s in spans)
        total = sum(walls)
        rows.append(
            {
                "stage": name,
                "count": len(walls),
                "errors": sum(1 for s in spans if s.get("status") == "error"),
                "total_sec": total,
                "mean_sec": total / len(walls),
                "p50_sec": _percentile(walls, 0.50),
                "p95_sec": _percentile(walls, 0.95),
                "max_sec": walls[-1],
            }
        )
    rows.sort(key=lambda r: r["total_sec"], reverse=True)
    return rows


def _percentile(sorted_values: Sequence[float], q: float) -> float:
    if not sorted_values:
        return math.nan
    position = q * (len(sorted_values) - 1)
    lower = int(position)
    upper = min(lower + 1, len(sorted_values) - 1)
    frac = position - lower
    return sorted_values[lower] * (1 - frac) + sorted_values[upper] * frac


# ----------------------------------------------------------------------
# Table rendering
# ----------------------------------------------------------------------
def _format_table(headers: Sequence[str], rows: Sequence[Sequence[str]]) -> str:
    """Plain aligned columns: first column left, the rest right-aligned."""
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    for row in (headers, *rows):
        cells = [
            row[0].ljust(widths[0]),
            *(cell.rjust(widths[i + 1]) for i, cell in enumerate(row[1:])),
        ]
        lines.append("  ".join(cells).rstrip())
    lines.insert(1, "  ".join("-" * w for w in widths))
    return "\n".join(lines)


def _ms(seconds: float) -> str:
    return f"{seconds * 1000:.1f}"


def format_span_table(events: Sequence[dict]) -> str:
    """The per-stage timing table (the heart of ``obs summarize``)."""
    rows = span_stats(events)
    if not rows:
        return "no spans recorded"
    table = _format_table(
        (
            "stage", "count", "errors", "total_s",
            "mean_ms", "p50_ms", "p95_ms", "max_ms",
        ),
        [
            (
                r["stage"],
                str(r["count"]),
                str(r["errors"]),
                f"{r['total_sec']:.3f}",
                _ms(r["mean_sec"]),
                _ms(r["p50_sec"]),
                _ms(r["p95_sec"]),
                _ms(r["max_sec"]),
            )
            for r in rows
        ],
    )
    return table


def format_event_tally(events: Sequence[dict]) -> str:
    """Count structured log events (``type == "event"``) by name."""
    tally: Dict[str, int] = defaultdict(int)
    for event in events:
        if event.get("type") == "event":
            tally[event["name"]] += 1
    if not tally:
        return ""
    rows = [
        (name, str(count))
        for name, count in sorted(tally.items(), key=lambda kv: -kv[1])
    ]
    return _format_table(("event", "count"), rows)


def format_metrics(snapshot: dict) -> str:
    """Human view of a metrics snapshot (counters, gauges, histograms)."""
    sections: List[str] = []
    counters = snapshot.get("counters") or {}
    gauges = snapshot.get("gauges") or {}
    if counters or gauges:
        rows = [(n, _num(v)) for n, v in sorted(counters.items())]
        rows += [(n, _num(v)) for n, v in sorted(gauges.items())]
        sections.append(_format_table(("metric", "value"), rows))
    histograms = snapshot.get("histograms") or {}
    if histograms:
        rows = []
        for name, described in sorted(histograms.items()):
            hist = histogram_from_snapshot(name, described)
            rows.append(
                (
                    name,
                    str(hist.count),
                    _num(hist.mean) if hist.count else "-",
                    _num(hist.quantile(0.5)) if hist.count else "-",
                    _num(hist.quantile(0.95)) if hist.count else "-",
                    _num(described["max"]) if hist.count else "-",
                )
            )
        sections.append(
            _format_table(
                ("histogram", "count", "mean", "p50", "p95", "max"), rows
            )
        )
    return "\n\n".join(sections) if sections else "no metrics recorded"


def _num(value: float) -> str:
    if value == int(value) and abs(value) < 1e12:
        return str(int(value))
    return f"{value:.4g}"


def format_manifest_jobs(manifest: dict) -> str:
    """Per-job table from a run manifest's ``jobs`` list."""
    jobs = manifest.get("jobs") or []
    if not jobs:
        return "manifest has no jobs"
    rows = [
        (
            job.get("label", job.get("job_id", "?"))[:60],
            job.get("job_id", "")[:12],
            job.get("status", "?"),
            str(job.get("attempts", "")),
            f"{job.get('duration_sec', 0.0):.3f}",
            "hit" if job.get("cache_hit") else "",
        )
        for job in jobs
    ]
    return _format_table(
        ("job", "id", "status", "attempts", "wall_s", "cache"), rows
    )


# ----------------------------------------------------------------------
# Multi-file merge (the per-shard roll-up primitive)
# ----------------------------------------------------------------------
def classify_artifact(path) -> str:
    """Sniff an artefact: ``manifest`` | ``metrics`` | ``events``."""
    path = Path(path)
    text = path.read_text()
    try:
        parsed = json.loads(text)
    except json.JSONDecodeError:
        parsed = None
    if isinstance(parsed, dict):
        if "manifest_version" in parsed:
            return "manifest"
        if (
            "counters" in parsed
            or "histograms" in parsed
            or isinstance(parsed.get("metrics"), dict)
        ):
            return "metrics"
    return "events"


def _metrics_payload(document: dict) -> dict:
    """The registry snapshot inside a metrics file or live snapshot."""
    # Live snapshots (obs.live) nest the registry under "metrics";
    # plain ``--metrics-out`` files *are* the registry snapshot.
    if "counters" not in document and isinstance(
        document.get("metrics"), dict
    ):
        return document["metrics"]
    return document


def merge_metrics_files(paths: Sequence) -> dict:
    """Merge N metrics snapshots: counters/histograms sum, gauges LWW.

    Histograms merge through the registry's kind dispatch — the
    log-bucketed kind rolls up across files from different processes
    or shards without any bucket-layout agreement.
    """
    registry = MetricsRegistry()
    for path in paths:
        document = json.loads(Path(path).read_text())
        registry.merge_snapshot(_metrics_payload(document))
    return registry.snapshot()


def summarize_paths(paths: Sequence) -> str:
    """Summarize one artefact, or merge-and-summarize several.

    Multiple metrics snapshots merge into one registry view (counters
    by sum, histograms via the mergeable representation); multiple
    event logs concatenate into one span table.  Manifests are always
    reported individually.
    """
    paths = [Path(p) for p in paths]
    if not paths:
        raise ValueError("no inputs to summarize")
    if len(paths) == 1:
        return summarize_path(paths[0])

    by_kind: Dict[str, List[Path]] = defaultdict(list)
    for path in paths:
        by_kind[classify_artifact(path)].append(path)

    sections: List[str] = []
    for manifest_path in by_kind.get("manifest", []):
        sections.append(summarize_path(manifest_path))
    event_paths = by_kind.get("events", [])
    if event_paths:
        events: List[dict] = []
        for path in event_paths:
            events.extend(load_events(path))
        trace_ids = {e.get("trace_id") for e in events} - {None}
        sections.append(
            f"event logs ({len(event_paths)} file(s)): "
            f"{len(events)} events, {len(trace_ids)} trace(s)"
        )
        sections.append(format_span_table(events))
        tally = format_event_tally(events)
        if tally:
            sections.append(tally)
    metrics_paths = by_kind.get("metrics", [])
    if metrics_paths:
        merged = merge_metrics_files(metrics_paths)
        names = ", ".join(p.name for p in metrics_paths)
        sections.append(
            f"merged metrics ({len(metrics_paths)} file(s): {names})"
        )
        sections.append(format_metrics(merged))
    return "\n\n".join(sections)


# ----------------------------------------------------------------------
# Entry point: sniff the artefact type and compose the report
# ----------------------------------------------------------------------
def summarize_path(path) -> str:
    """Summarize an event log, run manifest, or metrics snapshot file."""
    path = Path(path)
    text = path.read_text()
    document: Optional[dict] = None
    try:
        parsed = json.loads(text)
        if isinstance(parsed, dict):
            document = parsed
    except json.JSONDecodeError:
        document = None

    sections: List[str] = []
    if document is not None and "manifest_version" in document:
        header = (
            f"run {document.get('run_id', '?')} "
            f"({document.get('command', '?')}, "
            f"{document.get('workers', '?')} worker(s), "
            f"{document.get('wall_time_sec', 0.0):.2f}s wall)"
        )
        sections.append(header)
        sections.append(format_manifest_jobs(document))
        if document.get("metrics"):
            sections.append(format_metrics(document["metrics"]))
    elif document is not None and (
        "counters" in document
        or "histograms" in document
        or isinstance(document.get("metrics"), dict)
    ):
        sections.append(f"metrics snapshot {path.name}")
        sections.append(format_metrics(_metrics_payload(document)))
    else:
        events = load_events(path)
        if not events:
            raise ValueError(
                f"{path} is neither a manifest, a metrics snapshot, "
                "nor a JSONL event log"
            )
        trace_ids = {e.get("trace_id") for e in events} - {None}
        sections.append(
            f"event log {path.name}: {len(events)} events, "
            f"{len(trace_ids)} trace(s)"
        )
        sections.append(format_span_table(events))
        tally = format_event_tally(events)
        if tally:
            sections.append(tally)
    return "\n\n".join(sections)
