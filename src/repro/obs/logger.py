"""Structured logging: named events with typed fields, two render modes.

``get_logger(name)`` (from :mod:`repro.obs`) returns a
:class:`StructuredLogger` whose methods take an *event name* plus
keyword fields::

    log = obs.get_logger("repro.ml")
    log.info("train.epoch", epoch=3, epochs=20, nll=0.412)

Rendering is selected globally (CLI ``--log-format``):

* ``human`` — one aligned line per event on the log stream (stderr by
  default): ``12:00:01 INFO  repro.ml train.epoch epoch=3 nll=0.412``
* ``jsonl`` — the same record as one JSON object per line, for
  machine consumption.

Independently of console rendering, when telemetry is *enabled* every
event that clears the level threshold is also appended to the active
trace buffer (type ``event``), so retries, degradations, and epoch
progress land in the same JSONL event log as the spans around them.
"""

from __future__ import annotations

import json
import sys
import time
from typing import Any, Callable, Dict

LEVELS: Dict[str, int] = {"debug": 10, "info": 20, "warning": 30, "error": 40}


def level_number(level: str) -> int:
    try:
        return LEVELS[level]
    except KeyError:
        raise ValueError(
            f"unknown log level {level!r}; choose from {sorted(LEVELS)}"
        ) from None


def _fmt_value(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.6g}"
    return str(value)


class StructuredLogger:
    """A named logger bound (lazily) to the global obs state.

    ``state_getter`` indirection keeps this module free of the global
    state it reports through — :func:`repro.obs.get_logger` supplies it —
    and means reconfiguration (or a worker-process context swap) takes
    effect immediately on every already-constructed logger.
    """

    __slots__ = ("name", "_state")

    def __init__(self, name: str, state_getter: Callable[[], Any]):
        self.name = name
        self._state = state_getter

    # ------------------------------------------------------------------
    # Level methods
    # ------------------------------------------------------------------
    def debug(self, event: str, **fields: Any) -> None:
        self.log("debug", event, **fields)

    def info(self, event: str, **fields: Any) -> None:
        self.log("info", event, **fields)

    def warning(self, event: str, **fields: Any) -> None:
        self.log("warning", event, **fields)

    def error(self, event: str, **fields: Any) -> None:
        self.log("error", event, **fields)

    def log(self, level: str, event: str, **fields: Any) -> None:
        state = self._state()
        levelno = level_number(level)
        if levelno < state.log_level:
            return
        if state.enabled:
            state.tracer.record_event(level, self.name, event, fields)
        if state.console:
            stream = state.log_stream or sys.stderr
            if state.log_format == "jsonl":
                line = json.dumps(
                    {
                        "ts": time.time(),
                        "level": level,
                        "logger": self.name,
                        "event": event,
                        **({"fields": fields} if fields else {}),
                    }
                )
            else:
                parts = [
                    time.strftime("%H:%M:%S"),
                    f"{level.upper():<7}",
                    self.name,
                    event,
                ]
                parts.extend(
                    f"{key}={_fmt_value(value)}"
                    for key, value in fields.items()
                )
                line = " ".join(parts)
            print(line, file=stream)
