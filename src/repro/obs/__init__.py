"""repro.obs — structured telemetry: spans, metrics, and event logs.

The observability layer for the whole stack (see DESIGN.md §7).  Three
instruments, one convention (``subsystem.stage`` dotted names), one
switch:

* :func:`span` — context-manager tracing with wall/CPU durations,
  nesting, and trace/span ids that survive the process-pool boundary;
* :func:`metrics` — counters, gauges, and fixed-bucket histograms with
  JSON and Prometheus-text exporters;
* :func:`get_logger` — structured events (``train.epoch``,
  ``executor.retry``) rendered human-readably or as JSONL, and mirrored
  into the trace buffer when telemetry is on.

Telemetry is **off by default and free when off**: every accessor
returns a shared no-op stub until :func:`configure` enables it (the CLI
does so when ``--trace-out`` or ``--metrics-out`` is passed).

Typical instrumentation::

    from repro import obs

    with obs.span("fit.static_params", trace_len=len(trace)):
        params = estimate(trace)
    obs.metrics().counter("cache.misses").inc()
    obs.get_logger("repro.runtime").warning(
        "executor.retry", job_id=spec.job_id, attempt=2, delay_sec=0.31
    )

Enabling, exporting, and merging across processes::

    from repro import obs

    obs.configure(enabled=True, trace_out="events.jsonl")

    snapshot = obs.metrics_snapshot()        # plain dict -> json.dump()
    text = obs.metrics().to_prometheus_text()  # Prometheus exposition

    # Worker processes ship ``{"events": [...], "metrics": {...}}``
    # payloads back with their job results; the parent folds them into
    # its own registry and trace buffer so one report covers the whole
    # pool (counters/histograms add, gauges last-write-wins, spans keep
    # the parent run's trace_id):
    obs.merge_telemetry(worker_telemetry)

    obs.flush()                              # write buffered events out

Post-hoc analysis reads the files back: :func:`load_events` /
:func:`span_stats` / :func:`format_span_table` power
``repro obs summarize <events.jsonl | metrics.json | manifest.json>``.
"""

from repro.obs.core import (
    ObsState,
    activate_context,
    bound_event_buffer,
    configure,
    current_context,
    enabled,
    events,
    flush,
    get_logger,
    merge_telemetry,
    metrics,
    metrics_snapshot,
    reset,
    set_event_sink,
    span,
    trace_id,
)
from repro.obs.logger import LEVELS, StructuredLogger
from repro.obs.metrics import (
    DURATION_BUCKETS,
    NULL_REGISTRY,
    RATE_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    LogHistogram,
    MetricsRegistry,
    histogram_from_snapshot,
)
from repro.obs.summarize import (
    format_span_table,
    load_events,
    merge_metrics_files,
    span_stats,
    summarize_path,
    summarize_paths,
)
from repro.obs.tracing import EVENT_VERSION, NULL_SPAN, Span, Tracer

__all__ = [
    "ObsState",
    "activate_context",
    "configure",
    "current_context",
    "enabled",
    "events",
    "flush",
    "get_logger",
    "merge_telemetry",
    "metrics",
    "metrics_snapshot",
    "reset",
    "span",
    "trace_id",
    "LEVELS",
    "StructuredLogger",
    "DURATION_BUCKETS",
    "RATE_BUCKETS",
    "NULL_REGISTRY",
    "Counter",
    "Gauge",
    "Histogram",
    "LogHistogram",
    "MetricsRegistry",
    "histogram_from_snapshot",
    "bound_event_buffer",
    "set_event_sink",
    "format_span_table",
    "load_events",
    "merge_metrics_files",
    "span_stats",
    "summarize_path",
    "summarize_paths",
    "EVENT_VERSION",
    "NULL_SPAN",
    "Span",
    "Tracer",
]
