"""Span-based tracing with cross-process trace/span-id propagation.

A *span* measures one named stage: wall time (``time.perf_counter``),
CPU time (``time.process_time``), nesting (the enclosing span becomes
``parent_id``), and arbitrary JSON-able attributes.  Finished spans are
buffered on the owning :class:`Tracer` as plain dicts — one JSONL line
each when flushed to ``--trace-out``.

Names follow the ``subsystem.stage`` dotted convention (DESIGN.md §7):
``executor.job``, ``fit.static_params``, ``ml.train``, ``sim.run``.

Cross-process story: the batch executor snapshots the parent's
``(trace_id, current span_id)`` into the job payload; the worker
process builds a fresh ``Tracer`` *seeded with that identity*, so every
span it records carries the parent run's ``trace_id`` and hangs off the
submitting span.  The worker's event buffer rides back with the job
result and is appended to the parent's buffer — no cross-process file
appends, no locks.
"""

from __future__ import annotations

import contextvars
import time
import uuid
from typing import Any, Callable, Dict, List, Optional

#: Event-log schema version, stamped on every record.
EVENT_VERSION = 1


def _new_id(bits: int = 64) -> str:
    return uuid.uuid4().hex[: bits // 4]


class Span:
    """One active stage measurement (use via ``obs.span(name, **attrs)``)."""

    __slots__ = (
        "tracer", "name", "attrs", "span_id", "parent_id",
        "start_ts", "_wall0", "_cpu0", "_token",
    )

    def __init__(self, tracer: "Tracer", name: str, attrs: Dict[str, Any]):
        self.tracer = tracer
        self.name = name
        self.attrs = attrs
        self.span_id = _new_id()
        self.parent_id: Optional[str] = None
        self.start_ts = 0.0
        self._wall0 = 0.0
        self._cpu0 = 0.0
        self._token: Optional[contextvars.Token] = None

    def set(self, key: str, value: Any) -> "Span":
        """Attach an attribute computed mid-span (chainable)."""
        self.attrs[key] = value
        return self

    def __enter__(self) -> "Span":
        parent = self.tracer.current()
        self.parent_id = (
            parent.span_id if parent is not None else self.tracer.root_parent_id
        )
        self._token = self.tracer._current.set(self)
        # Wall-clock epoch is a *timestamp* (for ordering/joining events);
        # durations below come exclusively from perf_counter/process_time.
        self.start_ts = time.time()
        self._wall0 = time.perf_counter()
        self._cpu0 = time.process_time()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        wall = time.perf_counter() - self._wall0
        cpu = time.process_time() - self._cpu0
        if self._token is not None:
            self.tracer._current.reset(self._token)
        record = {
            "v": EVENT_VERSION,
            "type": "span",
            "name": self.name,
            "trace_id": self.tracer.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "ts": self.start_ts,
            "wall_sec": wall,
            "cpu_sec": cpu,
            "status": "ok" if exc_type is None else "error",
        }
        if exc_type is not None:
            self.attrs.setdefault("error_type", exc_type.__name__)
        if self.attrs:
            record["attrs"] = self.attrs
        self.tracer.emit(record)
        return False  # never swallow exceptions


class NullSpan:
    """Shared do-nothing span handed out when telemetry is disabled."""

    __slots__ = ()

    def set(self, key: str, value: Any) -> "NullSpan":
        return self

    def __enter__(self) -> "NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


NULL_SPAN = NullSpan()


class Tracer:
    """Owns a trace identity, the current-span context, and the buffer."""

    def __init__(
        self,
        trace_id: Optional[str] = None,
        root_parent_id: Optional[str] = None,
    ):
        self.trace_id = trace_id or _new_id(128)
        #: Parent span id inherited across a process boundary: worker-side
        #: top-level spans hang off the submitting span in the parent.
        self.root_parent_id = root_parent_id
        self.events: List[dict] = []
        #: Optional tap called with every finished record *in addition to*
        #: buffering it — the flight recorder's feed (see obs.live).  Sink
        #: failures are swallowed: observability must never take down the
        #: instrumented code path.
        self.sink: Optional[Callable[[dict], None]] = None
        self._current: contextvars.ContextVar[Optional[Span]] = (
            contextvars.ContextVar("repro_obs_span", default=None)
        )

    def emit(self, record: dict) -> None:
        """Buffer a finished record and tee it to the sink, if any."""
        self.events.append(record)
        if self.sink is not None:
            try:
                self.sink(record)
            except Exception:
                pass

    def current(self) -> Optional[Span]:
        return self._current.get()

    def current_span_id(self) -> Optional[str]:
        span = self.current()
        return span.span_id if span is not None else self.root_parent_id

    def span(self, name: str, **attrs: Any) -> Span:
        return Span(self, name, attrs)

    def record_event(
        self,
        level: str,
        logger: str,
        event: str,
        fields: Dict[str, Any],
    ) -> None:
        """Buffer a structured log event, linked to the current span."""
        self.emit(
            {
                "v": EVENT_VERSION,
                "type": "event",
                "name": event,
                "trace_id": self.trace_id,
                "span_id": self.current_span_id(),
                "ts": time.time(),
                "level": level,
                "logger": logger,
                "fields": fields,
            }
        )
