"""Live telemetry for long-running processes: flusher, SLOs, flight ring.

Post-hoc telemetry (PR 2) only becomes visible when a process exits and
writes its artifacts; a daemon absorbing traffic for days is a black
box while it runs.  This module is the *live* layer (DESIGN.md §12):

* :class:`SnapshotFlusher` — a background thread that atomically
  publishes ``<dir>/metrics.json`` (registry snapshot + service stats)
  and ``<dir>/metrics.prom`` (Prometheus text) every ``interval_sec``.
  Readers (``repro obs top``, ``repro serve status``, scrapers) only
  ever see complete files: writes go to a tmp file then ``os.replace``.
* :class:`SLOTracker` — per-job-class latency objective + error
  budget.  A job is *good* iff it succeeded **and** finished within
  the objective; the flusher evaluates the bad fraction of each flush
  window against the budget (``1 - success_target``) and reports
  burn-rate violations (``serve.slo_burn``).
* :class:`FlightRecorder` — a bounded in-memory ring of recent spans,
  log events, and metric deltas (fed via the tracer sink,
  ``obs.set_event_sink``).  On a crash-ish trigger — unhandled daemon
  exception, lease SIGKILL, breaker opening — :meth:`FlightRecorder.dump`
  writes the ring plus a metrics snapshot atomically to
  ``<dir>/flight-<ts>.json`` so the last seconds before the incident
  survive the incident.  Dumps are rate-limited per reason.
* :func:`format_top` / :func:`read_snapshot` — the ``repro obs top``
  terminal view over a published snapshot file.

Everything here is zero-dependency and safe to run alongside the
instrumented code: flusher/recorder failures are contained (a broken
disk must not take down the daemon), and all mutation is lock-guarded.
"""

from __future__ import annotations

import json
import math
import os
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro import obs
from repro.obs.metrics import histogram_from_snapshot
from repro.obs.summarize import _format_table

#: Snapshot / flight-dump schema version.
LIVE_VERSION = 1

#: Default flight-recorder ring capacity (most-recent records kept).
DEFAULT_RING_SIZE = 512

#: Default minimum seconds between two dumps for the *same* reason.
DEFAULT_DUMP_INTERVAL_SEC = 1.0


# ----------------------------------------------------------------------
# SLOs
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SLO:
    """A latency objective + error budget for one job class."""

    job_class: str
    latency_objective_sec: float
    success_target: float = 0.99

    @property
    def budget(self) -> float:
        """Allowed bad fraction (error budget)."""
        return max(1.0 - self.success_target, 1e-9)


def parse_slo(spec: str) -> SLO:
    """Parse a CLI SLO spec: ``<class>=<latency>:<target>``.

    The latency accepts ``250ms``, ``1.5s``, or a bare number of
    seconds; the target is a success fraction, e.g.
    ``drill=250ms:0.99``.  The target may be omitted
    (``drill=250ms``) and defaults to 0.99.
    """
    if "=" not in spec:
        raise ValueError(
            f"bad SLO spec {spec!r}: expected <class>=<latency>[:<target>]"
        )
    job_class, _, rest = spec.partition("=")
    latency_text, _, target_text = rest.partition(":")
    latency_text = latency_text.strip().lower()
    try:
        if latency_text.endswith("ms"):
            latency = float(latency_text[:-2]) / 1000.0
        elif latency_text.endswith("s"):
            latency = float(latency_text[:-1])
        else:
            latency = float(latency_text)
        target = float(target_text) if target_text else 0.99
    except ValueError as exc:
        raise ValueError(f"bad SLO spec {spec!r}: {exc}") from None
    if not latency > 0:
        raise ValueError(f"bad SLO spec {spec!r}: latency must be > 0")
    if not 0 < target < 1:
        raise ValueError(
            f"bad SLO spec {spec!r}: target must be in (0, 1)"
        )
    return SLO(job_class.strip(), latency, target)


class SLOTracker:
    """Tracks per-class good/bad outcomes against declared SLOs.

    ``observe`` is called once per finished job; ``evaluate`` is called
    by the flusher each flush and returns burn-rate violations for the
    window since the previous evaluation (windows shorter than
    ``min_events`` roll forward instead of producing noisy verdicts).
    """

    def __init__(
        self,
        slos: Sequence[SLO],
        burn_threshold: float = 2.0,
        min_events: int = 10,
    ):
        self.slos: Dict[str, SLO] = {s.job_class: s for s in slos}
        self.burn_threshold = burn_threshold
        self.min_events = min_events
        self._lock = threading.Lock()
        # per class: [total, bad, window_total, window_bad, last_burn]
        self._state: Dict[str, List[float]] = {
            cls: [0, 0, 0, 0, 0.0] for cls in self.slos
        }

    def observe(self, job_class: str, latency_sec: float, ok: bool) -> None:
        slo = self.slos.get(job_class)
        if slo is None:
            return
        good = ok and latency_sec <= slo.latency_objective_sec
        with self._lock:
            state = self._state[job_class]
            state[0] += 1
            state[2] += 1
            if not good:
                state[1] += 1
                state[3] += 1

    def evaluate(self) -> List[dict]:
        """Close the current window; return burn-rate violations."""
        burns: List[dict] = []
        with self._lock:
            for cls, slo in self.slos.items():
                state = self._state[cls]
                window_total, window_bad = state[2], state[3]
                if window_total < self.min_events:
                    continue  # window rolls forward
                burn = (window_bad / window_total) / slo.budget
                state[2] = state[3] = 0
                state[4] = burn
                if burn >= self.burn_threshold:
                    burns.append(
                        {
                            "job_class": cls,
                            "burn_rate": burn,
                            "window_total": int(window_total),
                            "window_bad": int(window_bad),
                            "objective_sec": slo.latency_objective_sec,
                            "success_target": slo.success_target,
                        }
                    )
        return burns

    def status(self) -> Dict[str, dict]:
        """Cumulative per-class budget view for the live snapshot."""
        out: Dict[str, dict] = {}
        with self._lock:
            for cls, slo in self.slos.items():
                total, bad, _, _, last_burn = self._state[cls]
                bad_frac = (bad / total) if total else 0.0
                out[cls] = {
                    "objective_sec": slo.latency_objective_sec,
                    "success_target": slo.success_target,
                    "total": int(total),
                    "bad": int(bad),
                    # Fraction of the error budget consumed so far;
                    # > 1 means the SLO is already blown overall.
                    "budget_used": bad_frac / slo.budget,
                    "last_burn_rate": last_burn,
                }
        return out


# ----------------------------------------------------------------------
# Flight recorder
# ----------------------------------------------------------------------
class FlightRecorder:
    """Bounded ring of recent telemetry, dumped atomically on incidents."""

    def __init__(
        self,
        out_dir,
        ring_size: int = DEFAULT_RING_SIZE,
        min_interval_sec: float = DEFAULT_DUMP_INTERVAL_SEC,
        clock: Callable[[], float] = time.time,
    ):
        self.out_dir = Path(out_dir)
        self.min_interval_sec = min_interval_sec
        self._clock = clock
        self._ring: deque = deque(maxlen=ring_size)
        self._lock = threading.Lock()
        self._last_dump: Dict[str, float] = {}
        self.dumps = 0

    # -- feeding the ring ------------------------------------------------
    def record(self, record: dict) -> None:
        """Tracer-sink entry point: every finished span/event lands here."""
        with self._lock:
            self._ring.append(record)

    def note(self, kind: str, **fields: Any) -> None:
        """Append a recorder-local entry (metric deltas, state changes)."""
        entry = {"type": kind, "ts": self._clock()}
        entry.update(fields)
        with self._lock:
            self._ring.append(entry)

    # -- dumping ---------------------------------------------------------
    def dump(
        self,
        reason: str,
        context: Optional[dict] = None,
        force: bool = False,
    ) -> Optional[Path]:
        """Write the ring + a metrics snapshot to ``flight-<ts>.json``.

        Returns the written path, or ``None`` when rate-limited (same
        reason within ``min_interval_sec``, unless ``force``).  Never
        raises: a flight recorder that crashes the daemon it is meant
        to autopsy would be worse than useless.
        """
        try:
            now = self._clock()
            last = self._last_dump.get(reason, -math.inf)
            if not force and now - last < self.min_interval_sec:
                return None
            self._last_dump[reason] = now
            with self._lock:
                events = list(self._ring)
            payload = {
                "v": LIVE_VERSION,
                "reason": reason,
                "ts": now,
                "pid": os.getpid(),
                "context": context or {},
                "metrics": obs.metrics_snapshot(),
                "events": events,
            }
            self.out_dir.mkdir(parents=True, exist_ok=True)
            stamp = int(now * 1000)
            path = self.out_dir / f"flight-{stamp}.json"
            while path.exists():
                stamp += 1
                path = self.out_dir / f"flight-{stamp}.json"
            tmp = path.with_suffix(f".json.tmp.{os.getpid()}")
            tmp.write_text(json.dumps(payload, indent=2, default=str))
            os.replace(tmp, path)
            self.dumps += 1
            return path
        except Exception:
            return None


# ----------------------------------------------------------------------
# Snapshot flusher
# ----------------------------------------------------------------------
class SnapshotFlusher:
    """Periodically publishes the live snapshot files, atomically.

    ``service_stats`` is an optional callable returning a JSON-able
    dict of process-specific state (queue depth, leases, breaker
    states, journal lag — whatever the host process wants visible); it
    is embedded under ``"service"`` in ``metrics.json``.  Each flush
    also evaluates the SLO tracker (if any), emitting
    ``serve.slo_burn`` events/counters and feeding burn + metric-delta
    entries to the flight recorder (if any).
    """

    def __init__(
        self,
        out_dir,
        interval_sec: float = 2.0,
        service_stats: Optional[Callable[[], dict]] = None,
        slo_tracker: Optional[SLOTracker] = None,
        recorder: Optional[FlightRecorder] = None,
    ):
        self.out_dir = Path(out_dir)
        self.interval_sec = interval_sec
        self.service_stats = service_stats
        self.slo_tracker = slo_tracker
        self.recorder = recorder
        self.flushes = 0
        self.errors = 0
        self._last_counters: Dict[str, float] = {}
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._log = obs.get_logger("repro.obs.live")

    @property
    def json_path(self) -> Path:
        return self.out_dir / "metrics.json"

    @property
    def prom_path(self) -> Path:
        return self.out_dir / "metrics.prom"

    def flush_now(self) -> dict:
        """Build + atomically publish one snapshot; returns the snapshot."""
        snapshot = self.build_snapshot()
        self.out_dir.mkdir(parents=True, exist_ok=True)
        _atomic_write(self.json_path, json.dumps(snapshot, default=str))
        _atomic_write(self.prom_path, obs.metrics().to_prometheus_text())
        self.flushes += 1
        return snapshot

    def build_snapshot(self) -> dict:
        service: dict = {}
        if self.service_stats is not None:
            service = self.service_stats() or {}
        metrics = obs.metrics_snapshot() or {
            "counters": {}, "gauges": {}, "histograms": {},
        }
        self._track_deltas(metrics.get("counters") or {})
        snapshot = {
            "v": LIVE_VERSION,
            "ts": time.time(),
            "pid": os.getpid(),
            "interval_sec": self.interval_sec,
            "service": service,
            "metrics": metrics,
        }
        if self.slo_tracker is not None:
            for burn in self.slo_tracker.evaluate():
                obs.metrics().counter("serve.slo_burn").inc()
                self._log.warning("serve.slo_burn", **burn)
                if self.recorder is not None:
                    self.recorder.note("slo_burn", **burn)
            snapshot["slo"] = self.slo_tracker.status()
        return snapshot

    def _track_deltas(self, counters: Dict[str, float]) -> None:
        """Feed changed-counter deltas into the flight ring each flush."""
        if self.recorder is None:
            self._last_counters = dict(counters)
            return
        deltas = {
            name: value - self._last_counters.get(name, 0.0)
            for name, value in counters.items()
            if value != self._last_counters.get(name, 0.0)
        }
        self._last_counters = dict(counters)
        if deltas:
            self.recorder.note("metrics_delta", counters=deltas)

    # -- background thread ----------------------------------------------
    def start(self) -> None:
        if self._thread is not None:
            return
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="obs-snapshot-flusher", daemon=True
        )
        self._thread.start()

    def stop(self, final_flush: bool = True) -> None:
        self._stop.set()
        thread, self._thread = self._thread, None
        if thread is not None:
            thread.join(timeout=self.interval_sec + 2.0)
        if final_flush:
            try:
                self.flush_now()
            except Exception:
                self.errors += 1

    def _run(self) -> None:
        while not self._stop.wait(self.interval_sec):
            try:
                self.flush_now()
            except Exception:
                # The snapshot dir may vanish (tmp-dir teardown) or the
                # disk may be full; the host process must keep running.
                self.errors += 1


def _atomic_write(path: Path, text: str) -> None:
    tmp = path.with_suffix(f"{path.suffix}.tmp.{os.getpid()}")
    tmp.write_text(text)
    os.replace(tmp, path)


# ----------------------------------------------------------------------
# `repro obs top`
# ----------------------------------------------------------------------
def read_snapshot(path) -> dict:
    """Load a published ``metrics.json`` live snapshot."""
    return json.loads(Path(path).read_text())


def format_top(snapshot: dict, now: Optional[float] = None) -> str:
    """Render the ``repro obs top`` view of one live snapshot."""
    now = time.time() if now is None else now
    age = now - snapshot.get("ts", now)
    service = snapshot.get("service") or {}
    sections: List[str] = []

    interval = snapshot.get("interval_sec")
    stale = interval is not None and age > 2 * interval
    header = (
        f"serve pid {snapshot.get('pid', '?')} — snapshot age {age:.1f}s"
    )
    if interval is not None:
        header += f" (flush every {interval:g}s)"
    if stale:
        header += "  [STALE]"
    sections.append(header)

    overview_rows = []
    if "queue_depth" in service:
        depth = service["queue_depth"]
        limit = service.get("queue_limit")
        overview_rows.append(
            ("queue depth", f"{depth}/{limit}" if limit else str(depth))
        )
    if "in_flight" in service:
        in_flight = service["in_flight"] or {}
        total = sum(in_flight.values())
        workers = service.get("workers")
        detail = ", ".join(
            f"{cls}={n}" for cls, n in sorted(in_flight.items())
        )
        cell = f"{total}/{workers}" if workers else str(total)
        if detail:
            cell += f"  ({detail})"
        overview_rows.append(("active leases", cell))
    if "journal" in service:
        journal = service["journal"]
        lag = journal.get("lag_sec")
        overview_rows.append(
            (
                "journal",
                f"{journal.get('records', '?')} records, "
                f"lag {lag:.1f}s" if lag is not None else "?",
            )
        )
    if "draining" in service:
        overview_rows.append(
            ("draining", "yes" if service["draining"] else "no")
        )
    if overview_rows:
        sections.append(
            "\n".join(f"{k:>14}  {v}" for k, v in overview_rows)
        )

    breakers = service.get("breakers") or {}
    if breakers:
        rows = []
        for cls, info in sorted(breakers.items()):
            rows.append(
                (
                    cls,
                    info.get("state", "?"),
                    str(info.get("failures", 0)),
                    f"{info.get('cooldown_sec', 0.0):.1f}",
                )
            )
        sections.append(
            _format_table(("breaker", "state", "fails", "cooldown_s"), rows)
        )

    histograms = (snapshot.get("metrics") or {}).get("histograms") or {}
    latency_rows = []
    for name, described in sorted(histograms.items()):
        if not name.startswith("serve.latency_sec."):
            continue
        cls = name[len("serve.latency_sec."):]
        hist = histogram_from_snapshot(name, described)
        if not hist.count:
            continue
        latency_rows.append(
            (
                cls,
                str(hist.count),
                _fmt_ms(hist.quantile(0.50)),
                _fmt_ms(hist.quantile(0.95)),
                _fmt_ms(hist.quantile(0.99)),
                _fmt_ms(described.get("max") or 0.0),
            )
        )
    if latency_rows:
        sections.append(
            _format_table(
                ("class", "jobs", "p50_ms", "p95_ms", "p99_ms", "max_ms"),
                latency_rows,
            )
        )

    slo = snapshot.get("slo") or {}
    if slo:
        rows = []
        for cls, info in sorted(slo.items()):
            rows.append(
                (
                    cls,
                    _fmt_ms(info["objective_sec"]),
                    f"{info['success_target']:.3g}",
                    str(info["total"]),
                    str(info["bad"]),
                    f"{info['budget_used']:.2f}",
                    f"{info['last_burn_rate']:.2f}",
                )
            )
        sections.append(
            _format_table(
                (
                    "slo_class", "obj_ms", "target",
                    "jobs", "bad", "budget_used", "burn",
                ),
                rows,
            )
        )

    counters = (snapshot.get("metrics") or {}).get("counters") or {}
    serve_counters = {
        name: value
        for name, value in counters.items()
        if name.startswith(("serve.", "supervisor.", "breaker."))
    }
    if serve_counters:
        rows = [
            (name, f"{value:g}")
            for name, value in sorted(serve_counters.items())
        ]
        sections.append(_format_table(("counter", "value"), rows))

    return "\n\n".join(sections)


def _fmt_ms(seconds: float) -> str:
    return f"{seconds * 1000:.1f}"
