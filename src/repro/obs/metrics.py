"""Zero-dependency metrics: counters, gauges, fixed-bucket histograms.

A :class:`MetricsRegistry` is a named bag of instruments.  Instrument
names follow the repo-wide ``subsystem.stage`` dotted convention (see
DESIGN.md §7), e.g. ``executor.retries`` or ``ml.sec_per_epoch``.

Design constraints, in order:

1. **Off means free.**  When telemetry is disabled the accessors hand
   out shared no-op stubs (:data:`NULL_REGISTRY`), so an instrumented
   hot path costs one attribute call and nothing else.
2. **Mergeable.**  Worker processes record into their own registry and
   ship a :meth:`MetricsRegistry.snapshot` back with the job result;
   the parent folds it in with :meth:`MetricsRegistry.merge_snapshot`.
   Counters and histograms add; gauges are last-writer-wins.
3. **Exportable.**  ``snapshot()`` is the JSON schema embedded in run
   manifests and written by ``--metrics-out``;
   :meth:`MetricsRegistry.to_prometheus_text` renders the same data in
   the Prometheus text exposition format for scraping setups.
"""

from __future__ import annotations

import bisect
import json
import math
import os
import re
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

_NAME_RE = re.compile(r"^[a-z][a-z0-9_]*(\.[a-z0-9_]+)*$")

#: Default histogram buckets for durations in seconds (log-ish spaced).
DURATION_BUCKETS: Tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0,
)

#: Default buckets for throughput-style values (events/sec, packets/sec).
RATE_BUCKETS: Tuple[float, ...] = (
    1.0, 10.0, 100.0, 1e3, 1e4, 1e5, 1e6, 1e7,
)


def _check_name(name: str) -> str:
    if not _NAME_RE.match(name):
        raise ValueError(
            f"invalid metric name {name!r}: use dotted lowercase "
            "subsystem.stage identifiers"
        )
    return name


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount


class Gauge:
    """A value that can go up and down (last write wins)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class Histogram:
    """Fixed-bucket histogram (Prometheus-style, plus min/max tracking).

    ``buckets`` are upper bounds; an implicit +Inf bucket catches the
    rest.  ``quantile`` interpolates linearly inside the bucket that
    crosses the requested rank, clamped to the observed min/max, which
    is plenty for run-over-run timing comparisons.
    """

    __slots__ = ("name", "uppers", "counts", "sum", "count", "min", "max")

    def __init__(self, name: str, buckets: Sequence[float] = DURATION_BUCKETS):
        uppers = tuple(sorted(float(b) for b in buckets))
        if not uppers:
            raise ValueError("histogram needs at least one bucket")
        self.name = name
        self.uppers = uppers
        self.counts = [0] * (len(uppers) + 1)  # +1 for the +Inf bucket
        self.sum = 0.0
        self.count = 0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, value: float) -> None:
        self.counts[bisect.bisect_left(self.uppers, value)] += 1
        self.sum += value
        self.count += 1
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else math.nan

    def quantile(self, q: float) -> float:
        """Approximate ``q``-quantile (``q`` in [0, 1]) by interpolation."""
        if not 0 <= q <= 1:
            raise ValueError("q must be in [0, 1]")
        if self.count == 0:
            return math.nan
        rank = q * self.count
        cumulative = 0
        lower = self.min
        for i, bucket_count in enumerate(self.counts):
            upper = (
                self.uppers[i] if i < len(self.uppers) else self.max
            )
            if bucket_count:
                upper = min(upper, self.max)
                if cumulative + bucket_count >= rank:
                    frac = (rank - cumulative) / bucket_count
                    return max(
                        self.min, min(self.max, lower + frac * (upper - lower))
                    )
                cumulative += bucket_count
                lower = upper
            elif i < len(self.uppers):
                lower = max(lower, min(self.uppers[i], self.max))
        return self.max

    def describe(self) -> dict:
        return {
            "buckets": list(self.uppers),
            "counts": list(self.counts),
            "sum": self.sum,
            "count": self.count,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
        }

    def merge(self, other: dict) -> None:
        """Fold a :meth:`describe` snapshot (same buckets) into this one."""
        if list(other["buckets"]) != list(self.uppers):
            raise ValueError(
                f"bucket mismatch merging histogram {self.name!r}"
            )
        for i, c in enumerate(other["counts"]):
            self.counts[i] += c
        self.sum += other["sum"]
        self.count += other["count"]
        if other.get("min") is not None:
            self.min = min(self.min, other["min"])
        if other.get("max") is not None:
            self.max = max(self.max, other["max"])


class MetricsRegistry:
    """A named collection of counters, gauges, and histograms."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # ------------------------------------------------------------------
    # Instrument accessors (get-or-create)
    # ------------------------------------------------------------------
    def counter(self, name: str) -> Counter:
        instrument = self._counters.get(name)
        if instrument is None:
            instrument = self._counters.setdefault(
                name, Counter(_check_name(name))
            )
        return instrument

    def gauge(self, name: str) -> Gauge:
        instrument = self._gauges.get(name)
        if instrument is None:
            instrument = self._gauges.setdefault(
                name, Gauge(_check_name(name))
            )
        return instrument

    def histogram(
        self, name: str, buckets: Optional[Sequence[float]] = None
    ) -> Histogram:
        instrument = self._histograms.get(name)
        if instrument is None:
            instrument = self._histograms.setdefault(
                name, Histogram(_check_name(name), buckets or DURATION_BUCKETS)
            )
        return instrument

    def __len__(self) -> int:
        return len(self._counters) + len(self._gauges) + len(self._histograms)

    # ------------------------------------------------------------------
    # Export / merge
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """JSON-able snapshot of every instrument (the on-disk schema)."""
        return {
            "counters": {n: c.value for n, c in sorted(self._counters.items())},
            "gauges": {n: g.value for n, g in sorted(self._gauges.items())},
            "histograms": {
                n: h.describe() for n, h in sorted(self._histograms.items())
            },
        }

    def merge_snapshot(self, snapshot: Optional[dict]) -> None:
        """Fold a worker's snapshot into this registry.

        Counters and histograms accumulate; gauges take the incoming
        value (last writer wins, which is the only sane cross-process
        semantic for a gauge).
        """
        if not snapshot:
            return
        for name, value in snapshot.get("counters", {}).items():
            self.counter(name).value += value
        for name, value in snapshot.get("gauges", {}).items():
            self.gauge(name).set(value)
        for name, described in snapshot.get("histograms", {}).items():
            self.histogram(name, described["buckets"]).merge(described)

    def write_json(self, path) -> Path:
        """Atomically write the snapshot as JSON; returns the path."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(f"{path.suffix}.tmp.{os.getpid()}")
        tmp.write_text(json.dumps(self.snapshot(), indent=2))
        os.replace(tmp, path)
        return path

    def to_prometheus_text(self, prefix: str = "repro_") -> str:
        """The snapshot in Prometheus text exposition format.

        Dots become underscores (``executor.retries`` ->
        ``repro_executor_retries``); histograms expose cumulative
        ``_bucket{le=...}`` series plus ``_sum`` and ``_count``.
        """
        lines: List[str] = []

        def mangle(name: str) -> str:
            return prefix + name.replace(".", "_")

        for name, counter in sorted(self._counters.items()):
            m = mangle(name)
            lines.append(f"# TYPE {m} counter")
            lines.append(f"{m} {_fmt(counter.value)}")
        for name, gauge in sorted(self._gauges.items()):
            m = mangle(name)
            lines.append(f"# TYPE {m} gauge")
            lines.append(f"{m} {_fmt(gauge.value)}")
        for name, hist in sorted(self._histograms.items()):
            m = mangle(name)
            lines.append(f"# TYPE {m} histogram")
            cumulative = 0
            for upper, count in zip(hist.uppers, hist.counts):
                cumulative += count
                lines.append(
                    f'{m}_bucket{{le="{_fmt(upper)}"}} {cumulative}'
                )
            cumulative += hist.counts[-1]
            lines.append(f'{m}_bucket{{le="+Inf"}} {cumulative}')
            lines.append(f"{m}_sum {_fmt(hist.sum)}")
            lines.append(f"{m}_count {hist.count}")
        return "\n".join(lines) + ("\n" if lines else "")


def _fmt(value: float) -> str:
    """Prometheus-style number formatting (integers without the .0)."""
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


# ----------------------------------------------------------------------
# No-op stubs: what the accessors hand out when telemetry is disabled
# ----------------------------------------------------------------------
class _NullInstrument:
    """Answers every instrument method with a no-op."""

    __slots__ = ()

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass


class NullRegistry:
    """Shared no-op registry: recording into it does nothing."""

    __slots__ = ()

    def counter(self, name: str) -> _NullInstrument:
        return NULL_INSTRUMENT

    def gauge(self, name: str) -> _NullInstrument:
        return NULL_INSTRUMENT

    def histogram(self, name, buckets=None) -> _NullInstrument:
        return NULL_INSTRUMENT

    def snapshot(self) -> dict:
        return {"counters": {}, "gauges": {}, "histograms": {}}

    def merge_snapshot(self, snapshot) -> None:
        pass


NULL_INSTRUMENT = _NullInstrument()
NULL_REGISTRY = NullRegistry()
