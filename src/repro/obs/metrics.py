"""Zero-dependency metrics: counters, gauges, and two histogram kinds.

A :class:`MetricsRegistry` is a named bag of instruments.  Instrument
names follow the repo-wide ``subsystem.stage`` dotted convention (see
DESIGN.md §7), e.g. ``executor.retries`` or ``ml.sec_per_epoch``.

Design constraints, in order:

1. **Off means free.**  When telemetry is disabled the accessors hand
   out shared no-op stubs (:data:`NULL_REGISTRY`), so an instrumented
   hot path costs one attribute call and nothing else.
2. **Mergeable.**  Worker processes record into their own registry and
   ship a :meth:`MetricsRegistry.snapshot` back with the job result;
   the parent folds it in with :meth:`MetricsRegistry.merge_snapshot`.
   Counters and histograms add; gauges are last-writer-wins.  The
   :class:`LogHistogram` kind is mergeable *by construction* — bucket
   boundaries are a pure function of the growth factor, so snapshots
   from different processes, shards, or machines always line up.
3. **Thread-safe when live.**  The serve daemon records from its main
   loop, socket-intake threads, and the snapshot flusher concurrently;
   every mutating instrument method serialises on a per-instrument
   lock, and instrument creation / snapshotting serialise on a
   registry lock so a flusher never iterates a dict mid-resize.
4. **Exportable.**  ``snapshot()`` is the JSON schema embedded in run
   manifests and written by ``--metrics-out``;
   :meth:`MetricsRegistry.to_prometheus_text` renders the same data in
   the Prometheus text exposition format (cumulative ``le``-labelled
   buckets including ``+Inf``, plus ``_sum``/``_count``) for scraping
   setups and the live ``state/obs/metrics.prom`` snapshot.
"""

from __future__ import annotations

import bisect
import json
import math
import os
import re
import threading
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

_NAME_RE = re.compile(r"^[a-z][a-z0-9_]*(\.[a-z0-9_]+)*$")

#: Default histogram buckets for durations in seconds (log-ish spaced).
DURATION_BUCKETS: Tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0,
)

#: Default buckets for throughput-style values (events/sec, packets/sec).
RATE_BUCKETS: Tuple[float, ...] = (
    1.0, 10.0, 100.0, 1e3, 1e4, 1e5, 1e6, 1e7,
)

#: Default growth factor for :class:`LogHistogram` buckets: each bucket
#: is 10% wider than the one below, bounding the relative quantile
#: error at ~5% (geometric-midpoint interpolation) over any value range.
DEFAULT_LOG_FACTOR = 1.1


def _check_name(name: str) -> str:
    if not _NAME_RE.match(name):
        raise ValueError(
            f"invalid metric name {name!r}: use dotted lowercase "
            "subsystem.stage identifiers"
        )
    return name


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        with self._lock:
            self.value += amount


class Gauge:
    """A value that can go up and down (last write wins)."""

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self.value -= amount


class Histogram:
    """Fixed-bucket histogram (Prometheus-style, plus min/max tracking).

    ``buckets`` are upper bounds; an implicit +Inf bucket catches the
    rest.  ``quantile`` interpolates linearly inside the bucket that
    crosses the requested rank, clamped to the observed min/max, which
    is plenty for run-over-run timing comparisons.  Two fixed-bucket
    histograms only merge when their bucket layouts agree — use
    :class:`LogHistogram` where snapshots from arbitrary processes
    must roll up.
    """

    __slots__ = (
        "name", "uppers", "counts", "sum", "count", "min", "max", "_lock",
    )

    kind = "fixed"

    def __init__(self, name: str, buckets: Sequence[float] = DURATION_BUCKETS):
        uppers = tuple(sorted(float(b) for b in buckets))
        if not uppers:
            raise ValueError("histogram needs at least one bucket")
        self.name = name
        self.uppers = uppers
        self.counts = [0] * (len(uppers) + 1)  # +1 for the +Inf bucket
        self.sum = 0.0
        self.count = 0
        self.min = math.inf
        self.max = -math.inf
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        with self._lock:
            self.counts[bisect.bisect_left(self.uppers, value)] += 1
            self.sum += value
            self.count += 1
            if value < self.min:
                self.min = value
            if value > self.max:
                self.max = value

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else math.nan

    def quantile(self, q: float) -> float:
        """Approximate ``q``-quantile (``q`` in [0, 1]) by interpolation."""
        if not 0 <= q <= 1:
            raise ValueError("q must be in [0, 1]")
        if self.count == 0:
            return math.nan
        rank = q * self.count
        cumulative = 0
        lower = self.min
        for i, bucket_count in enumerate(self.counts):
            upper = (
                self.uppers[i] if i < len(self.uppers) else self.max
            )
            if bucket_count:
                upper = min(upper, self.max)
                if cumulative + bucket_count >= rank:
                    frac = (rank - cumulative) / bucket_count
                    return max(
                        self.min, min(self.max, lower + frac * (upper - lower))
                    )
                cumulative += bucket_count
                lower = upper
            elif i < len(self.uppers):
                lower = max(lower, min(self.uppers[i], self.max))
        return self.max

    def describe(self) -> dict:
        with self._lock:
            return {
                "kind": self.kind,
                "buckets": list(self.uppers),
                "counts": list(self.counts),
                "sum": self.sum,
                "count": self.count,
                "min": self.min if self.count else None,
                "max": self.max if self.count else None,
            }

    def merge(self, other: dict) -> None:
        """Fold a :meth:`describe` snapshot (same buckets) into this one."""
        if list(other["buckets"]) != list(self.uppers):
            raise ValueError(
                f"bucket mismatch merging histogram {self.name!r}"
            )
        with self._lock:
            for i, c in enumerate(other["counts"]):
                self.counts[i] += c
            self.sum += other["sum"]
            self.count += other["count"]
            if other.get("min") is not None:
                self.min = min(self.min, other["min"])
            if other.get("max") is not None:
                self.max = max(self.max, other["max"])


class LogHistogram:
    """Streaming log-bucketed histogram (HDR-style), mergeable anywhere.

    Positive values land in bucket ``floor(log(v) / log(factor))``,
    whose bounds are ``[factor**i, factor**(i+1))``; non-positive
    values land in a dedicated zero bucket.  Buckets are a *sparse*
    ``{index: count}`` dict, so the histogram covers any dynamic range
    (nanoseconds to hours) in O(observed octaves) memory and two
    snapshots merge by summing counts per index — no bucket-layout
    agreement needed, which is what makes multi-process and multi-shard
    roll-up safe.  Relative quantile error is bounded by
    ``factor - 1`` (10% at the default factor; interpolation inside
    the crossing bucket roughly halves that).
    """

    __slots__ = (
        "name", "factor", "_inv_log_factor", "counts", "zero_count",
        "sum", "count", "min", "max", "_lock",
    )

    kind = "log"

    def __init__(self, name: str, factor: float = DEFAULT_LOG_FACTOR):
        if not factor > 1.0:
            raise ValueError("log histogram factor must be > 1")
        self.name = name
        self.factor = float(factor)
        self._inv_log_factor = 1.0 / math.log(self.factor)
        self.counts: Dict[int, int] = {}
        self.zero_count = 0
        self.sum = 0.0
        self.count = 0
        self.min = math.inf
        self.max = -math.inf
        self._lock = threading.Lock()

    def _index(self, value: float) -> int:
        return math.floor(math.log(value) * self._inv_log_factor)

    def bucket_upper(self, index: int) -> float:
        return self.factor ** (index + 1)

    def bucket_lower(self, index: int) -> float:
        return self.factor ** index

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            if value > 0.0:
                idx = self._index(value)
                self.counts[idx] = self.counts.get(idx, 0) + 1
            else:
                self.zero_count += 1
            self.sum += value
            self.count += 1
            if value < self.min:
                self.min = value
            if value > self.max:
                self.max = value

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else math.nan

    def quantile(self, q: float) -> float:
        """Approximate ``q``-quantile, clamped to the observed range."""
        if not 0 <= q <= 1:
            raise ValueError("q must be in [0, 1]")
        if self.count == 0:
            return math.nan
        with self._lock:
            rank = q * self.count
            cumulative = self.zero_count
            if cumulative >= rank and self.zero_count:
                return max(self.min, min(self.max, 0.0))
            for idx in sorted(self.counts):
                bucket_count = self.counts[idx]
                if cumulative + bucket_count >= rank:
                    lower = self.bucket_lower(idx)
                    upper = self.bucket_upper(idx)
                    frac = (rank - cumulative) / bucket_count
                    value = lower + frac * (upper - lower)
                    return max(self.min, min(self.max, value))
                cumulative += bucket_count
            return self.max

    def describe(self) -> dict:
        with self._lock:
            return {
                "kind": self.kind,
                "factor": self.factor,
                "counts": {str(i): c for i, c in sorted(self.counts.items())},
                "zero": self.zero_count,
                "sum": self.sum,
                "count": self.count,
                "min": self.min if self.count else None,
                "max": self.max if self.count else None,
            }

    def merge(self, other: dict) -> None:
        """Fold a :meth:`describe` snapshot into this one (sums counts)."""
        if other.get("kind") != self.kind:
            raise ValueError(
                f"cannot merge a {other.get('kind')!r} snapshot into "
                f"log histogram {self.name!r}"
            )
        if not math.isclose(float(other.get("factor", 0.0)), self.factor):
            raise ValueError(
                f"factor mismatch merging log histogram {self.name!r}: "
                f"{other.get('factor')} != {self.factor}"
            )
        with self._lock:
            for raw_idx, c in (other.get("counts") or {}).items():
                idx = int(raw_idx)
                self.counts[idx] = self.counts.get(idx, 0) + int(c)
            self.zero_count += int(other.get("zero", 0))
            self.sum += other["sum"]
            self.count += other["count"]
            if other.get("min") is not None:
                self.min = min(self.min, other["min"])
            if other.get("max") is not None:
                self.max = max(self.max, other["max"])


AnyHistogram = Union[Histogram, LogHistogram]


def histogram_from_snapshot(name: str, described: dict) -> AnyHistogram:
    """Rebuild the right histogram kind from a ``describe()`` snapshot."""
    if described.get("kind") == LogHistogram.kind:
        hist: AnyHistogram = LogHistogram(
            name, described.get("factor", DEFAULT_LOG_FACTOR)
        )
    else:
        hist = Histogram(name, described["buckets"])
    hist.merge(described)
    return hist


class MetricsRegistry:
    """A named collection of counters, gauges, and histograms."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, AnyHistogram] = {}
        #: Guards instrument *creation* and snapshot iteration; the
        #: instruments themselves carry their own locks for updates.
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # Instrument accessors (get-or-create)
    # ------------------------------------------------------------------
    def counter(self, name: str) -> Counter:
        instrument = self._counters.get(name)
        if instrument is None:
            with self._lock:
                instrument = self._counters.get(name)
                if instrument is None:
                    instrument = Counter(_check_name(name))
                    self._counters[name] = instrument
        return instrument

    def gauge(self, name: str) -> Gauge:
        instrument = self._gauges.get(name)
        if instrument is None:
            with self._lock:
                instrument = self._gauges.get(name)
                if instrument is None:
                    instrument = Gauge(_check_name(name))
                    self._gauges[name] = instrument
        return instrument

    def histogram(
        self, name: str, buckets: Optional[Sequence[float]] = None
    ) -> Histogram:
        instrument = self._histograms.get(name)
        if instrument is None:
            with self._lock:
                instrument = self._histograms.get(name)
                if instrument is None:
                    instrument = Histogram(
                        _check_name(name), buckets or DURATION_BUCKETS
                    )
                    self._histograms[name] = instrument
        if not isinstance(instrument, Histogram):
            raise TypeError(
                f"{name!r} is a {type(instrument).__name__}, not a "
                "fixed-bucket Histogram"
            )
        return instrument

    def log_histogram(
        self, name: str, factor: Optional[float] = None
    ) -> LogHistogram:
        """Get-or-create a mergeable log-bucketed histogram."""
        instrument = self._histograms.get(name)
        if instrument is None:
            with self._lock:
                instrument = self._histograms.get(name)
                if instrument is None:
                    instrument = LogHistogram(
                        _check_name(name), factor or DEFAULT_LOG_FACTOR
                    )
                    self._histograms[name] = instrument
        if not isinstance(instrument, LogHistogram):
            raise TypeError(
                f"{name!r} is a {type(instrument).__name__}, not a "
                "LogHistogram"
            )
        return instrument

    def __len__(self) -> int:
        return len(self._counters) + len(self._gauges) + len(self._histograms)

    # ------------------------------------------------------------------
    # Export / merge
    # ------------------------------------------------------------------
    def _instruments(self) -> tuple:
        """A consistent view of the three dicts (guarded copy)."""
        with self._lock:
            return (
                sorted(self._counters.items()),
                sorted(self._gauges.items()),
                sorted(self._histograms.items()),
            )

    def snapshot(self) -> dict:
        """JSON-able snapshot of every instrument (the on-disk schema)."""
        counters, gauges, histograms = self._instruments()
        return {
            "counters": {n: c.value for n, c in counters},
            "gauges": {n: g.value for n, g in gauges},
            "histograms": {n: h.describe() for n, h in histograms},
        }

    def merge_snapshot(self, snapshot: Optional[dict]) -> None:
        """Fold a worker's snapshot into this registry.

        Counters and histograms accumulate; gauges take the incoming
        value (last writer wins, which is the only sane cross-process
        semantic for a gauge).  Histograms dispatch on the snapshot's
        ``kind``: ``log`` merges by bucket index, anything else is the
        fixed-bucket layout (which must match).
        """
        if not snapshot:
            return
        for name, value in snapshot.get("counters", {}).items():
            self.counter(name).inc(value)
        for name, value in snapshot.get("gauges", {}).items():
            self.gauge(name).set(value)
        for name, described in snapshot.get("histograms", {}).items():
            if described.get("kind") == LogHistogram.kind:
                self.log_histogram(
                    name, described.get("factor")
                ).merge(described)
            else:
                self.histogram(name, described["buckets"]).merge(described)

    def write_json(self, path) -> Path:
        """Atomically write the snapshot as JSON; returns the path."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(f"{path.suffix}.tmp.{os.getpid()}")
        tmp.write_text(json.dumps(self.snapshot(), indent=2))
        os.replace(tmp, path)
        return path

    def to_prometheus_text(self, prefix: str = "repro_") -> str:
        """The snapshot in Prometheus text exposition format.

        Dots become underscores (``executor.retries`` ->
        ``repro_executor_retries``); every histogram kind exposes
        cumulative ``_bucket{le=...}`` series ending in the mandatory
        ``le="+Inf"`` bucket, plus ``_sum`` and ``_count``.
        """
        lines: List[str] = []

        def mangle(name: str) -> str:
            return prefix + name.replace(".", "_")

        counters, gauges, histograms = self._instruments()
        for name, counter in counters:
            m = mangle(name)
            lines.append(f"# TYPE {m} counter")
            lines.append(f"{m} {_fmt(counter.value)}")
        for name, gauge in gauges:
            m = mangle(name)
            lines.append(f"# TYPE {m} gauge")
            lines.append(f"{m} {_fmt(gauge.value)}")
        for name, hist in histograms:
            m = mangle(name)
            lines.append(f"# TYPE {m} histogram")
            described = hist.describe()
            cumulative = 0
            if described["kind"] == LogHistogram.kind:
                if described["zero"]:
                    cumulative += described["zero"]
                    lines.append(f'{m}_bucket{{le="0"}} {cumulative}')
                factor = described["factor"]
                for raw_idx in sorted(
                    described["counts"], key=lambda k: int(k)
                ):
                    cumulative += described["counts"][raw_idx]
                    upper = factor ** (int(raw_idx) + 1)
                    lines.append(
                        f'{m}_bucket{{le="{_fmt_le(upper)}"}} {cumulative}'
                    )
            else:
                for upper, count in zip(
                    described["buckets"], described["counts"]
                ):
                    cumulative += count
                    lines.append(
                        f'{m}_bucket{{le="{_fmt_le(upper)}"}} {cumulative}'
                    )
            lines.append(f'{m}_bucket{{le="+Inf"}} {described["count"]}')
            lines.append(f'{m}_sum {_fmt(described["sum"])}')
            lines.append(f'{m}_count {described["count"]}')
        return "\n".join(lines) + ("\n" if lines else "")


def _fmt(value: float) -> str:
    """Prometheus-style number formatting (integers without the .0)."""
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _fmt_le(value: float) -> str:
    """Bucket-bound formatting: short, stable, no float-noise digits."""
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return f"{value:.6g}"


# ----------------------------------------------------------------------
# No-op stubs: what the accessors hand out when telemetry is disabled
# ----------------------------------------------------------------------
class _NullInstrument:
    """Answers every instrument method with a no-op."""

    __slots__ = ()

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass


class NullRegistry:
    """Shared no-op registry: recording into it does nothing."""

    __slots__ = ()

    def counter(self, name: str) -> _NullInstrument:
        return NULL_INSTRUMENT

    def gauge(self, name: str) -> _NullInstrument:
        return NULL_INSTRUMENT

    def histogram(self, name, buckets=None) -> _NullInstrument:
        return NULL_INSTRUMENT

    def log_histogram(self, name, factor=None) -> _NullInstrument:
        return NULL_INSTRUMENT

    def snapshot(self) -> dict:
        return {"counters": {}, "gauges": {}, "histograms": {}}

    def merge_snapshot(self, snapshot) -> None:
        pass

    def to_prometheus_text(self, prefix: str = "repro_") -> str:
        return ""


NULL_INSTRUMENT = _NullInstrument()
NULL_REGISTRY = NullRegistry()
