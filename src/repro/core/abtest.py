"""Instance-test and ensemble-test drivers (§2, §3.1).

The **ensemble test** recreates flighting-based A/B tests inside the
simulator: learn one iBoxNet model per control-protocol training trace,
then run both control and treatment protocols over every learnt model and
compare the resulting *distributions* of (rate, p95 delay, loss) against
ground truth (Fig. 2; ablations in Fig. 3).

The **instance test** asks the counterfactual for one specific path+time:
learn a model from a single control run under a specific cross-traffic
pattern, and check that treatment runs over the learnt model cluster with
the treatment's ground-truth runs for that same pattern (Fig. 4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.crosscorr import instance_feature_vector
from repro.analysis.kmeans import KMeans, cluster_purity
from repro.analysis.stats import summary_distribution_ks
from repro.core import iboxnet
from repro.core.iboxnet import IBoxNetModel
from repro.datasets.pantheon import PantheonDataset
from repro.datasets.scenarios import instance_test_config
from repro.simulation.topology import run_flow
from repro.trace.metrics import TraceSummary, summarize
from repro.trace.records import Trace


# ----------------------------------------------------------------------
# Ensemble test
# ----------------------------------------------------------------------
@dataclass
class EnsembleResult:
    """Ground-truth and simulated summary distributions per protocol."""

    control: str
    treatment: str
    gt_summaries: Dict[str, List[TraceSummary]] = field(default_factory=dict)
    sim_summaries: Dict[str, List[TraceSummary]] = field(default_factory=dict)
    models: List[IBoxNetModel] = field(default_factory=list)

    def ks_tests(self, protocol: str) -> Dict[str, Tuple[float, float]]:
        """KS (statistic, p-value) per Fig. 2 axis for one protocol."""
        return summary_distribution_ks(
            self.gt_summaries[protocol], self.sim_summaries[protocol]
        )

    def format_table(self) -> str:
        """A textual rendition of Fig. 2 (means of each axis)."""
        lines = [
            f"{'series':>22s} {'rate Mb/s':>10s} {'p95 ms':>8s} {'loss %':>7s}"
        ]
        for protocol in (self.control, self.treatment):
            for source, table in (
                ("GT", self.gt_summaries),
                ("iBoxNet", self.sim_summaries),
            ):
                rows = table[protocol]
                rate = np.mean([r.mean_rate_mbps for r in rows])
                p95 = np.nanmean([r.p95_delay_ms for r in rows])
                loss = np.mean([r.loss_percent for r in rows])
                lines.append(
                    f"{protocol + ' ' + source:>22s} "
                    f"{rate:>10.2f} {p95:>8.0f} {loss:>7.2f}"
                )
        return "\n".join(lines)


def ensemble_test(
    dataset: PantheonDataset,
    control: str = "cubic",
    treatment: str = "vegas",
    duration: float = 30.0,
    model_transform=None,
    fit_kwargs: Optional[dict] = None,
) -> EnsembleResult:
    """Run the full §3.1.1 ensemble A/B test.

    For every control run in ``dataset``: fit iBoxNet on its trace, then
    simulate both control and treatment over the learnt model.  Ground
    truth comes from the dataset's own runs.  ``model_transform`` lets the
    Fig. 3 ablations reuse this driver (it maps each fitted model to e.g.
    ``model.without_cross_traffic()``).
    """
    result = EnsembleResult(control=control, treatment=treatment)
    for protocol in (control, treatment):
        result.gt_summaries[protocol] = [
            summarize(r.trace) for r in dataset.by_protocol(protocol)
        ]
        result.sim_summaries[protocol] = []

    for run in dataset.by_protocol(control):
        model = iboxnet.fit(run.trace, **(fit_kwargs or {}))
        if model_transform is not None:
            model = model_transform(model)
        result.models.append(model)
        for protocol in (control, treatment):
            trace = model.simulate(
                protocol, duration=duration, seed=run.seed + 31
            )
            result.sim_summaries[protocol].append(summarize(trace))
    return result


# ----------------------------------------------------------------------
# Instance test
# ----------------------------------------------------------------------
@dataclass
class InstanceTestResult:
    """Everything Fig. 4 needs."""

    patterns: List[str]
    # One reference (control ground-truth) trace per CT pattern.
    reference_traces: List[Trace]
    # Ground-truth treatment runs: pattern index -> traces.
    gt_runs: Dict[int, List[Trace]]
    # iBoxNet treatment runs: pattern index -> traces.
    sim_runs: Dict[int, List[Trace]]
    features: np.ndarray  # (n_runs, n_features)
    true_pattern: np.ndarray  # (n_runs,)
    is_simulated: np.ndarray  # (n_runs,) bool
    cluster_labels: np.ndarray
    purity: float
    models: List[IBoxNetModel] = field(default_factory=list)

    def reference_alignment(self, pattern: int = 0) -> float:
        """Fig. 4(a): cross-correlation between the control run's rate
        series on GT vs on the learnt instance model."""
        from repro.analysis.crosscorr import max_normalized_crosscorr, run_series

        gt_rates, _ = run_series(self.reference_traces[pattern])
        sim = self.models[pattern].simulate(
            self.reference_traces[pattern].protocol,
            duration=self.reference_traces[pattern].duration,
            seed=pattern + 900,
        )
        sim_rates, _ = run_series(sim)
        return max_normalized_crosscorr(gt_rates, sim_rates)


def instance_test(
    control: str = "cubic",
    treatment: str = "vegas",
    ct_offsets: Sequence[float] = (0.0, 20.0, 40.0),
    ct_duration: float = 10.0,
    duration: float = 60.0,
    runs_per_instance: int = 10,
    rate_mbps: float = 8.0,
    base_seed: int = 0,
    n_clusters: Optional[int] = None,
    ct_bin_width: float = 0.5,
) -> InstanceTestResult:
    """The §3.1.2 instance test.

    Three (by default) cross-traffic *instances* share one fixed network
    configuration; only the CT burst's timing differs.  Per instance: learn
    iBoxNet from a single control run, then collect ``runs_per_instance``
    ground-truth treatment runs and the same number over the learnt model.
    All runs are embedded with cross-correlation features against the
    per-instance control references and clustered with k-means.
    """
    patterns = [f"{int(o)}-{int(o + ct_duration)}s" for o in ct_offsets]
    configs = [
        instance_test_config(
            rate_mbps=rate_mbps, ct_start=offset, ct_duration=ct_duration
        )
        for offset in ct_offsets
    ]

    # One control run per instance -> one learnt model per instance.
    reference_traces: List[Trace] = []
    models: List[IBoxNetModel] = []
    for k, config in enumerate(configs):
        run = run_flow(
            config, control, duration=duration, seed=base_seed + k,
            flow_id=f"{control}-inst{k}",
        )
        reference_traces.append(run.trace)
        models.append(iboxnet.fit(run.trace, ct_bin_width=ct_bin_width))

    gt_runs: Dict[int, List[Trace]] = {}
    sim_runs: Dict[int, List[Trace]] = {}
    for k, config in enumerate(configs):
        gt_runs[k] = [
            run_flow(
                config, treatment, duration=duration,
                seed=base_seed + 100 + k * runs_per_instance + r,
                flow_id=f"{treatment}-gt-inst{k}-r{r}",
            ).trace
            for r in range(runs_per_instance)
        ]
        sim_runs[k] = [
            models[k].simulate(
                treatment, duration=duration,
                seed=base_seed + 500 + k * runs_per_instance + r,
            )
            for r in range(runs_per_instance)
        ]

    features = []
    true_pattern = []
    is_simulated = []
    for k in range(len(configs)):
        for trace in gt_runs[k]:
            features.append(instance_feature_vector(trace, reference_traces))
            true_pattern.append(k)
            is_simulated.append(False)
        for trace in sim_runs[k]:
            features.append(instance_feature_vector(trace, reference_traces))
            true_pattern.append(k)
            is_simulated.append(True)
    features_arr = np.array(features)
    true_arr = np.array(true_pattern)
    sim_arr = np.array(is_simulated)

    k_clusters = n_clusters if n_clusters is not None else len(configs)
    kmeans = KMeans(n_clusters=k_clusters, seed=base_seed).fit(features_arr)
    purity = cluster_purity(kmeans.labels_, true_arr)

    return InstanceTestResult(
        patterns=patterns,
        reference_traces=reference_traces,
        gt_runs=gt_runs,
        sim_runs=sim_runs,
        features=features_arr,
        true_pattern=true_arr,
        is_simulated=sim_arr,
        cluster_labels=kmeans.labels_,
        purity=purity,
        models=models,
    )
