"""The iBox core: learning network models from end-to-end traces.

* :mod:`repro.core.static_params` — the §3 domain-knowledge estimators of
  bottleneck bandwidth, propagation delay and buffer size.
* :mod:`repro.core.cross_traffic` — the §3 "three forces" conservative
  cross-traffic estimator.
* :mod:`repro.core.iboxnet` — iBoxNet: fit a trace, get an emulator.
* :mod:`repro.core.iboxml` — iBoxML: the deep LSTM state-space delay model
  (§4), with the optional cross-traffic input feature (§5.2).
* :mod:`repro.core.augmentation` — iBoxNet + reordering discovery models
  (§5.1): LSTM and linear-logistic reorder predictors and the delay
  modification that injects predicted reorderings.
* :mod:`repro.core.abtest` — the §2 instance-test and ensemble-test
  experiment drivers.

§6 "open research challenges", implemented as extensions:

* :mod:`repro.core.validity` — limits of model validity (training-support
  envelopes and test-stream coverage scoring).
* :mod:`repro.core.adaptive_ct` — adaptive cross traffic expressed as a
  number of closed-loop TCP Cubic flows.
* :mod:`repro.core.ensemble` — the §3.1 "ideal" ensemble: a joint
  parameter distribution learnt over fitted models, sampled for fresh
  parameter combinations.
"""

from repro.core import (
    abtest,
    adaptive_ct,
    augmentation,
    cross_traffic,
    ensemble,
    iboxml,
    iboxnet,
    renewal,
    static_params,
    validity,
)
from repro.core.static_params import StaticParams, estimate_static_params
from repro.core.cross_traffic import CrossTrafficEstimate, estimate_cross_traffic
from repro.core.iboxnet import IBoxNetModel, fit
from repro.core.iboxml import IBoxMLConfig, IBoxMLModel
from repro.core.validity import ValidityRegion
from repro.core.adaptive_ct import AdaptiveCTModel, fit_adaptive_ct

__all__ = [
    "AdaptiveCTModel",
    "CrossTrafficEstimate",
    "IBoxMLConfig",
    "IBoxMLModel",
    "IBoxNetModel",
    "StaticParams",
    "ValidityRegion",
    "abtest",
    "adaptive_ct",
    "augmentation",
    "cross_traffic",
    "ensemble",
    "estimate_cross_traffic",
    "estimate_static_params",
    "fit",
    "fit_adaptive_ct",
    "iboxml",
    "iboxnet",
    "renewal",
    "static_params",
    "validity",
]
