"""iBoxNet: the network-model-based approach (§3).

``fit(trace)`` runs the static-parameter and cross-traffic estimators and
returns an :class:`IBoxNetModel` — a learnt ``(b, d, B, C)`` tuple that can
be "set on the NetEm emulator" (Fig. 1) to simulate any treatment protocol.

Ablations (Fig. 3) are expressed as constructor switches:

* ``include_cross_traffic=False``  — the no-CT model of Fig. 3(a);
* ``statistical_loss_rate=p``      — the [45]-style i.i.d.-loss baseline of
  Fig. 3(b) (usually built via :mod:`repro.baselines.statistical_loss`).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional, Tuple

import numpy as np

from repro import obs
from repro.core.cross_traffic import CrossTrafficEstimate, estimate_cross_traffic
from repro.core.static_params import StaticParams, estimate_static_params
from repro.simulation.emulator import EmulatorConfig, NetworkEmulator
from repro.simulation.topology import FlowRunResult
from repro.trace.records import Trace


@dataclass(frozen=True)
class IBoxNetModel:
    """A learnt iBoxNet path model: static parameters + cross-traffic.

    The model is cheap to learn (closed-form estimators), cheap to run
    (packet-level emulation at the learnt configuration), and — by §3.2 —
    interpretable: every field is a familiar networking construct.
    """

    params: StaticParams
    cross_traffic: CrossTrafficEstimate
    include_cross_traffic: bool = True
    statistical_loss_rate: float = 0.0
    source_flow_id: str = ""
    source_protocol: str = ""
    # Empirical loss rate of the training trace — the calibration target
    # for the statistical-loss baseline (Fig. 3b / [45]).
    source_loss_rate: float = 0.0
    # Extension (§3.2 lists variable bandwidth among what plain iBoxNet
    # cannot express): an optional learnt (times, rates) schedule that
    # overrides the constant bottleneck when set on the emulator.
    bandwidth_schedule: Optional[
        Tuple[Tuple[float, ...], Tuple[float, ...]]
    ] = None

    def emulator_config(self) -> EmulatorConfig:
        """The learnt parameters, ready to set on the emulator."""
        return EmulatorConfig(
            bandwidth_bytes_per_sec=self.params.bandwidth_bytes_per_sec,
            propagation_delay=self.params.propagation_delay,
            buffer_bytes=self.params.buffer_bytes,
            ct_bin_edges=self.cross_traffic.bin_edges,
            ct_rates_bytes_per_sec=self.cross_traffic.rates_bytes_per_sec,
            include_cross_traffic=self.include_cross_traffic,
            statistical_loss_rate=self.statistical_loss_rate,
            bandwidth_schedule=self.bandwidth_schedule,
        )

    def simulate(
        self,
        protocol: str,
        duration: float,
        seed: int,
        sender_kwargs: Optional[dict] = None,
    ) -> Trace:
        """Run a treatment ``protocol`` over the learnt path; returns its
        end-to-end trace."""
        return self.simulate_run(
            protocol, duration, seed, sender_kwargs=sender_kwargs
        ).trace

    def simulate_run(
        self,
        protocol: str,
        duration: float,
        seed: int,
        sender_kwargs: Optional[dict] = None,
    ) -> FlowRunResult:
        """Like :meth:`simulate` but returns the full run result (queue
        stats etc.)."""
        emulator = NetworkEmulator(self.emulator_config())
        return emulator.run(
            protocol, duration, seed, sender_kwargs=sender_kwargs
        )

    def without_cross_traffic(self) -> "IBoxNetModel":
        """The Fig. 3(a) ablation: same statics, CT injector disabled."""
        return replace(self, include_cross_traffic=False)

    def with_statistical_loss(self, loss_rate: float) -> "IBoxNetModel":
        """The Fig. 3(b) baseline: CT replaced by i.i.d. loss."""
        return replace(
            self,
            include_cross_traffic=False,
            statistical_loss_rate=loss_rate,
        )

    def with_variable_bandwidth(
        self, schedule: Tuple[Tuple[float, ...], Tuple[float, ...]]
    ) -> "IBoxNetModel":
        """Extension: override the constant bottleneck with a learnt
        (times, rates) schedule (see :func:`estimate_bandwidth_schedule`)."""
        return replace(self, bandwidth_schedule=schedule)

    def __str__(self) -> str:
        ct = (
            f"CT mean={self.cross_traffic.mean_rate / 125_000:.2f} Mb/s "
            f"(busy {self.cross_traffic.busy_fraction:.0%})"
            if self.include_cross_traffic
            else "no CT"
        )
        return f"IBoxNetModel({self.params}, {ct})"


# ----------------------------------------------------------------------
# Profile persistence (§3.2 fn. 2: releasable "iBoxNet profiles")
# ----------------------------------------------------------------------
# Version 1 was the original CLI ``--profile`` dump (no version field, no
# ablation flags).  Version 2 adds the version tag, the ablation switches,
# the CT busy fraction, and the optional bandwidth schedule, making the
# round-trip lossless.  Bump this whenever the profile schema (or the
# fitting procedure whose outputs it captures) changes incompatibly — the
# runtime cache folds it into its content hash, so stale entries are
# simply never looked up again.
PROFILE_VERSION = 2


def to_profile(model: IBoxNetModel) -> dict:
    """Serialise a fitted model to a JSON-able profile dict."""
    return {
        "profile_version": PROFILE_VERSION,
        "bandwidth_bytes_per_sec": model.params.bandwidth_bytes_per_sec,
        "propagation_delay_sec": model.params.propagation_delay,
        "buffer_bytes": model.params.buffer_bytes,
        "cross_traffic": {
            "bin_edges": list(model.cross_traffic.bin_edges),
            "rates_bytes_per_sec": list(
                model.cross_traffic.rates_bytes_per_sec
            ),
            "busy_fraction": model.cross_traffic.busy_fraction,
        },
        "include_cross_traffic": model.include_cross_traffic,
        "statistical_loss_rate": model.statistical_loss_rate,
        "source_flow_id": model.source_flow_id,
        "source_protocol": model.source_protocol,
        "source_loss_rate": model.source_loss_rate,
        "bandwidth_schedule": (
            None
            if model.bandwidth_schedule is None
            else [
                list(model.bandwidth_schedule[0]),
                list(model.bandwidth_schedule[1]),
            ]
        ),
    }


def from_profile(profile: dict) -> IBoxNetModel:
    """Rebuild an :class:`IBoxNetModel` from a profile dict.

    Accepts both the current schema and the original version-1 dump
    (which had no ``profile_version`` field) so previously released
    profiles keep loading.
    """
    version = profile.get("profile_version", 1)
    if version > PROFILE_VERSION:
        raise ValueError(
            f"profile version {version} is newer than supported "
            f"({PROFILE_VERSION})"
        )
    ct = profile["cross_traffic"]
    schedule = profile.get("bandwidth_schedule")
    return IBoxNetModel(
        params=StaticParams(
            bandwidth_bytes_per_sec=float(profile["bandwidth_bytes_per_sec"]),
            propagation_delay=float(profile["propagation_delay_sec"]),
            buffer_bytes=float(profile["buffer_bytes"]),
        ),
        cross_traffic=CrossTrafficEstimate(
            bin_edges=tuple(float(e) for e in ct["bin_edges"]),
            rates_bytes_per_sec=tuple(
                float(r) for r in ct["rates_bytes_per_sec"]
            ),
            busy_fraction=float(ct.get("busy_fraction", 0.0)),
        ),
        include_cross_traffic=bool(profile.get("include_cross_traffic", True)),
        statistical_loss_rate=float(profile.get("statistical_loss_rate", 0.0)),
        source_flow_id=profile.get("source_flow_id", ""),
        source_protocol=profile.get("source_protocol", ""),
        source_loss_rate=float(profile.get("source_loss_rate", 0.0)),
        bandwidth_schedule=(
            None
            if schedule is None
            else (
                tuple(float(t) for t in schedule[0]),
                tuple(float(r) for r in schedule[1]),
            )
        ),
    )


def fit(
    trace: Trace,
    bandwidth_window: float = 1.0,
    ct_bin_width: float = 0.5,
    busy_threshold_packets: float = 1.5,
    max_delay_percentile: float = 100.0,
) -> IBoxNetModel:
    """Learn an iBoxNet model from one input/output trace.

    This is the whole §3 training procedure: three closed-form static
    estimators plus the conservative cross-traffic reconstruction — no
    gradient descent, no combinatorial search, which is exactly the
    efficiency argument of §3.2.
    """
    with obs.span("fit.static_params", packets=len(trace)):
        params = estimate_static_params(
            trace,
            window=bandwidth_window,
            max_delay_percentile=max_delay_percentile,
        )
    with obs.span("fit.cross_traffic", packets=len(trace)):
        cross_traffic = estimate_cross_traffic(
            trace,
            params,
            bin_width=ct_bin_width,
            busy_threshold_packets=busy_threshold_packets,
        )
    return IBoxNetModel(
        params=params,
        cross_traffic=cross_traffic,
        source_flow_id=trace.flow_id,
        source_protocol=trace.protocol,
        source_loss_rate=trace.loss_rate,
    )


def estimate_bandwidth_schedule(
    trace: Trace,
    schedule_window: float = 2.0,
    peak_window: float = 0.5,
) -> Tuple[Tuple[float, ...], Tuple[float, ...]]:
    """Extension: a piecewise-constant bandwidth profile from one trace.

    §3.2 lists variable bandwidth (wireless links, token-bucket
    regulators) among the behaviours the single-constant-bottleneck
    iBoxNet cannot express.  This estimator applies the §3 peak-rate idea
    *per window*: within each ``schedule_window``, the bandwidth is the
    peak delivery rate over ``peak_window`` sliding sub-windows.  Windows
    in which the sender did not saturate read low — the same graceful
    degradation as the global estimator (§6) — so windows with no
    deliveries inherit their predecessor's value.

    Returns a ``(times, rates)`` schedule accepted by
    :meth:`IBoxNetModel.with_variable_bandwidth`.
    """
    from repro.trace.features import sliding_window_rate

    if schedule_window <= 0 or peak_window <= 0:
        raise ValueError("windows must be positive")
    mask = trace.delivered_mask
    arrivals = trace.delivered_at[mask]
    sizes = trace.sizes[mask]
    order = np.argsort(arrivals)
    arrivals, sizes = arrivals[order], sizes[order]
    if len(arrivals) == 0:
        raise ValueError("no delivered packets")
    rates_at_arrivals = sliding_window_rate(
        arrivals, sizes, arrivals, peak_window
    )
    edges = np.arange(0.0, trace.duration + schedule_window, schedule_window)
    times: list = []
    rates: list = []
    previous = float(rates_at_arrivals.max())  # sane fallback
    for k in range(len(edges) - 1):
        in_window = (arrivals >= edges[k]) & (arrivals < edges[k + 1])
        if in_window.any():
            previous = float(rates_at_arrivals[in_window].max())
        times.append(float(edges[k]))
        rates.append(max(previous, 1500.0))
    return tuple(times), tuple(rates)
