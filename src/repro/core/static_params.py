"""Static path-parameter estimation (§3).

The paper's three domain-knowledge estimators:

(i)   **bottleneck bandwidth** ``b`` — "the peak receiving rate, over 1 s
      sliding windows, seen in the training data (even if the sender does
      not fill the bottleneck link on a sustained basis, short bursts would
      still enable accurate estimation)";
(ii)  **propagation delay** ``d`` — "the minimum delay seen in the traces
      (the assumption being that in a long-enough trace, at least some
      packets will likely encounter an empty bottleneck queue)";
(iii) **buffer size** ``B`` — "the estimated bandwidth times the difference
      between the maximum and minimum delays (the assumption being that at
      least some packets would encounter an almost full buffer)".

§6 notes these assumptions degrade gracefully when violated; the validators
here quantify exactly that on simulated paths where ground truth is known.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List

import numpy as np

from repro.trace.features import sliding_window_rate
from repro.trace.records import Trace


@dataclass(frozen=True)
class StaticParams:
    """Learnt static parameters of a path (the (b, d, B) of Fig. 1)."""

    bandwidth_bytes_per_sec: float
    propagation_delay: float
    buffer_bytes: float

    def __str__(self) -> str:
        from repro.simulation import units

        return (
            f"b={units.bytes_per_sec_to_mbps(self.bandwidth_bytes_per_sec):.2f} Mb/s, "
            f"d={units.sec_to_ms(self.propagation_delay):.1f} ms, "
            f"B={self.buffer_bytes / 1000:.0f} kB"
        )


def estimate_bandwidth(trace: Trace, window: float = 1.0) -> float:
    """Peak receiving rate over sliding windows (bytes/s)."""
    mask = trace.delivered_mask
    arrivals = trace.delivered_at[mask]
    sizes = trace.sizes[mask]
    if len(arrivals) == 0:
        raise ValueError("cannot estimate bandwidth: no delivered packets")
    order = np.argsort(arrivals)
    arrivals = arrivals[order]
    sizes = sizes[order]
    # Evaluate the windowed rate with the window ending at each arrival —
    # the supremum of the sliding-window rate is attained at an arrival.
    rates = sliding_window_rate(arrivals, sizes, arrivals, window)
    return float(rates.max())


def estimate_propagation_delay(trace: Trace) -> float:
    """Minimum one-way delay (seconds)."""
    delays = trace.delivered_delays()
    if len(delays) == 0:
        raise ValueError("cannot estimate delay: no delivered packets")
    return float(delays.min())


def estimate_buffer(
    trace: Trace,
    bandwidth_bytes_per_sec: float,
    max_delay_percentile: float = 100.0,
) -> float:
    """Buffer size as ``b * (max_delay - min_delay)`` (bytes).

    ``max_delay_percentile`` < 100 trims outlier delays (e.g. a single
    packet caught behind a link-rate fade) — an extension knob; the paper's
    definition is the default 100.
    """
    delays = trace.delivered_delays()
    if len(delays) == 0:
        raise ValueError("cannot estimate buffer: no delivered packets")
    max_delay = float(np.percentile(delays, max_delay_percentile))
    spread = max(0.0, max_delay - float(delays.min()))
    # Never report a buffer smaller than one MTU — an empty-spread trace
    # means the queue was never observed, not that there is no queue.
    return max(1500.0, bandwidth_bytes_per_sec * spread)


def estimate_static_params(
    trace: Trace,
    window: float = 1.0,
    max_delay_percentile: float = 100.0,
) -> StaticParams:
    """Run all three §3 estimators on one trace."""
    bandwidth = estimate_bandwidth(trace, window)
    delay = estimate_propagation_delay(trace)
    buffer_bytes = estimate_buffer(trace, bandwidth, max_delay_percentile)
    return StaticParams(
        bandwidth_bytes_per_sec=bandwidth,
        propagation_delay=delay,
        buffer_bytes=buffer_bytes,
    )


def estimate_from_flows(
    traces: Iterable[Trace],
    window: float = 1.0,
) -> StaticParams:
    """Aggregate estimation over multiple flows of the same path.

    §6: "Currently, we aggregate data from multiple flows from around the
    same time between two nodes, which increases the likelihood of these
    assumptions being satisfied."  Bandwidth takes the max of the per-flow
    peaks, propagation delay the min of mins, and the buffer uses the
    overall delay spread.
    """
    traces_list: List[Trace] = list(traces)
    if not traces_list:
        raise ValueError("need at least one trace")
    bandwidth = max(estimate_bandwidth(t, window) for t in traces_list)
    all_delays = np.concatenate(
        [t.delivered_delays() for t in traces_list if t.packets_delivered]
    )
    if len(all_delays) == 0:
        raise ValueError("no delivered packets in any trace")
    d_min = float(all_delays.min())
    spread = float(all_delays.max()) - d_min
    return StaticParams(
        bandwidth_bytes_per_sec=bandwidth,
        propagation_delay=d_min,
        buffer_bytes=max(1500.0, bandwidth * spread),
    )
