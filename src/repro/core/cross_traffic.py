"""Cross-traffic estimation: the §3 "three forces" queue reconstruction.

The paper models three forces acting on the bottleneck queue:

1. packets enqueued from sender S (at a known rate — the input trace);
2. packets enqueued from cross-traffic flows (unknown — the estimand);
3. packets dequeued at the bottleneck link (estimated — ``b`` while busy).

Over an interval ``[t, t+w)`` in which the queue is known to be non-empty
throughout, conservation of bytes gives

    q(t+w) - q(t) = A_S + A_CT - b * w
    A_CT          = dq + b * w - A_S

where ``q`` is reconstructed from per-packet queueing delays
(``q(t_i) ~= (delay_i - d) * b``) and ``A_S`` is the sender's bytes offered
in the interval.  "Care is needed since the dequeuing in (3) only happens
while the queue is non-empty.  We make a conservative estimate (i.e., lower
bound) of cross-traffic, focusing just on periods when we are sure that the
queue was non-empty" — intervals that fail the busy test contribute zero.

The resulting estimate is a non-adaptive rate time series, replayed by the
iBoxNet emulator through :class:`repro.simulation.crosstraffic.RateReplaySource`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.core.static_params import StaticParams
from repro.trace.records import Trace


@dataclass(frozen=True)
class CrossTrafficEstimate:
    """A binned cross-traffic rate time series (bytes/s per bin)."""

    bin_edges: Tuple[float, ...]
    rates_bytes_per_sec: Tuple[float, ...]
    # Diagnostic: fraction of bins that passed the surely-busy test.
    busy_fraction: float = 0.0

    def __post_init__(self):
        if len(self.bin_edges) != len(self.rates_bytes_per_sec) + 1:
            raise ValueError("need len(bin_edges) == len(rates) + 1")

    @property
    def mean_rate(self) -> float:
        """Time-averaged estimated cross-traffic rate (bytes/s)."""
        edges = np.asarray(self.bin_edges)
        rates = np.asarray(self.rates_bytes_per_sec)
        widths = np.diff(edges)
        total_time = widths.sum()
        if total_time <= 0:
            return 0.0
        return float((rates * widths).sum() / total_time)

    def total_bytes(self) -> float:
        """Total estimated cross-traffic volume."""
        edges = np.asarray(self.bin_edges)
        rates = np.asarray(self.rates_bytes_per_sec)
        return float((rates * np.diff(edges)).sum())

    def at_times(self, times: np.ndarray) -> np.ndarray:
        """Per-time CT rate lookup (bytes/s); zero outside the bins.

        Used to build the per-packet CT feature for iBoxML (§5.2).
        """
        times = np.asarray(times, dtype=float)
        edges = np.asarray(self.bin_edges)
        rates = np.asarray(self.rates_bytes_per_sec)
        idx = np.searchsorted(edges, times, side="right") - 1
        valid = (idx >= 0) & (idx < len(rates))
        out = np.zeros_like(times)
        out[valid] = rates[idx[valid]]
        return out


def reconstruct_queue_occupancy(
    trace: Trace, params: StaticParams
) -> Tuple[np.ndarray, np.ndarray]:
    """Per-delivered-packet (enqueue_time, queue_bytes) reconstruction.

    A packet's queueing delay is its one-way delay minus the propagation
    floor; multiplying by the service rate gives the bytes that were ahead
    of it in the queue when it arrived.
    """
    mask = trace.delivered_mask
    times = trace.sent_at[mask]
    qdelay = trace.delays[mask] - params.propagation_delay
    qdelay = np.maximum(qdelay, 0.0)
    occupancy = qdelay * params.bandwidth_bytes_per_sec
    order = np.argsort(times)
    return times[order], occupancy[order]


def estimate_cross_traffic(
    trace: Trace,
    params: StaticParams,
    bin_width: float = 0.5,
    busy_threshold_packets: float = 1.5,
    horizon: Optional[float] = None,
) -> CrossTrafficEstimate:
    """Conservative (lower-bound) cross-traffic rate series.

    Parameters
    ----------
    bin_width:
        Width of the estimation bins in seconds.  Finer bins localise CT
        bursts better (important for the instance test) but are noisier.
    busy_threshold_packets:
        A bin counts as *surely busy* only if every queue sample in it
        shows at least this many packets' worth of bytes queued.  This is
        the paper's conservativeness: dequeue force (3) is only trusted
        when the queue cannot have gone idle.
    horizon:
        Length of the estimate; defaults to the trace duration.
    """
    if bin_width <= 0:
        raise ValueError("bin_width must be positive")
    duration = horizon if horizon is not None else trace.duration
    edges = np.arange(0.0, duration + bin_width, bin_width)
    n_bins = len(edges) - 1
    rates = np.zeros(n_bins)
    if trace.packets_delivered < 2 or n_bins == 0:
        return CrossTrafficEstimate(
            tuple(edges), tuple(rates), busy_fraction=0.0
        )

    sample_times, occupancy = reconstruct_queue_occupancy(trace, params)
    mean_size = float(trace.sizes.mean())
    busy_floor = busy_threshold_packets * mean_size

    # Queue occupancy interpolated at the bin edges.
    edge_occupancy = np.interp(edges, sample_times, occupancy)

    # Sender bytes *enqueued* per bin (force 1).  Packets that were lost
    # never made it into the queue (droptail discards on arrival), so they
    # must not be counted — under overload, counting sent-but-dropped
    # bytes would cancel the cross-traffic term entirely and blind the
    # estimator exactly when cross traffic matters most.
    delivered = trace.delivered_mask
    sender_bytes, _ = np.histogram(
        trace.sent_at[delivered], bins=edges, weights=trace.sizes[delivered]
    )

    busy_bins = 0
    b = params.bandwidth_bytes_per_sec
    for k in range(n_bins):
        lo, hi = edges[k], edges[k + 1]
        in_bin = (sample_times >= lo) & (sample_times < hi)
        samples = occupancy[in_bin]
        # Surely-busy test: need evidence throughout the bin.  No samples
        # means no evidence; any sample near empty means the dequeue force
        # may have paused.
        if len(samples) == 0 or samples.min() < busy_floor:
            continue
        if edge_occupancy[k] < busy_floor or edge_occupancy[k + 1] < busy_floor:
            continue
        busy_bins += 1
        dq = edge_occupancy[k + 1] - edge_occupancy[k]
        ct_bytes = dq + b * (hi - lo) - sender_bytes[k]
        rates[k] = max(0.0, ct_bytes / (hi - lo))

    return CrossTrafficEstimate(
        tuple(edges),
        tuple(rates),
        busy_fraction=busy_bins / n_bins if n_bins else 0.0,
    )


def per_packet_cross_traffic(
    trace: Trace, estimate: CrossTrafficEstimate
) -> np.ndarray:
    """CT feature aligned with the trace's packets (by send time)."""
    return estimate.at_times(trace.sent_at)
