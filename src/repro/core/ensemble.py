"""Joint parameter distributions for ensemble testing (§3.1, "ideally").

The paper: "In the ensemble test, the parameters should ideally be drawn
from the joint distribution learnt over the training data set comprising a
potentially large number of traces, thereby ensuring that the appropriate
combinations of bottleneck bandwidth, buffer size, cross-traffic, etc. are
picked.  For simplicity, however, we just use the parameters combinations
derived from individual training traces."

This module implements the *ideal* version the paper deferred: a
:class:`ParameterDistribution` learnt over a collection of fitted iBoxNet
models.  Sampling works in log space (all parameters are positive and
right-skewed) with a Gaussian-copula-style construction: marginal
empirical quantiles joined by the empirical correlation of the log
parameters, so sampled combinations respect the dependencies seen in the
data (fast paths tend to have proportionally larger buffers; congested
paths carry more cross traffic).  Each sample yields a fresh
:class:`~repro.core.iboxnet.IBoxNetModel` whose cross-traffic series is
resampled from a training model and rescaled to the drawn CT level.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Sequence, Tuple

import numpy as np

from repro.core.cross_traffic import CrossTrafficEstimate
from repro.core.iboxnet import IBoxNetModel
from repro.core.static_params import StaticParams

_EPS = 1e-9
PARAM_NAMES = ("bandwidth", "propagation_delay", "buffer", "ct_level")


@dataclass
class ParameterDistribution:
    """The learnt joint distribution over (b, d, B, CT level)."""

    log_mean: np.ndarray  # (4,)
    log_cov: np.ndarray  # (4, 4)
    source_models: List[IBoxNetModel]
    # Physical cap on sampled CT utilization: the largest level seen in
    # training (with headroom).  A no-CT training model contributes
    # log(1e-4) to the CT marginal, stretching its log-variance; without
    # this cap, tail draws would overload every sampled path.
    max_ct_level: float = 1.0

    @property
    def n_sources(self) -> int:
        return len(self.source_models)

    def correlation(self, a: str, b: str) -> float:
        """Empirical correlation between two log parameters."""
        i, j = PARAM_NAMES.index(a), PARAM_NAMES.index(b)
        denom = np.sqrt(self.log_cov[i, i] * self.log_cov[j, j])
        if denom < _EPS:
            return 0.0
        return float(self.log_cov[i, j] / denom)

    def sample(self, n: int, seed: int = 0) -> List[IBoxNetModel]:
        """Draw ``n`` new parameter combinations as ready-to-run models."""
        rng = np.random.default_rng(seed)
        # Regularise the covariance so degenerate corpora still sample.
        cov = self.log_cov + np.eye(4) * 1e-6
        draws = rng.multivariate_normal(self.log_mean, cov, size=n)
        models = []
        for k in range(n):
            bandwidth, delay, buffer_bytes, ct_level = np.exp(draws[k])
            ct_level = min(ct_level, self.max_ct_level)
            donor = self.source_models[rng.integers(self.n_sources)]
            ct = _rescale_ct(donor.cross_traffic, ct_level * bandwidth)
            params = StaticParams(
                bandwidth_bytes_per_sec=float(bandwidth),
                propagation_delay=float(delay),
                buffer_bytes=float(max(1500.0, buffer_bytes)),
            )
            models.append(
                replace(
                    donor,
                    params=params,
                    cross_traffic=ct,
                    source_flow_id=f"sampled-{k}",
                )
            )
        return models


def _ct_level(model: IBoxNetModel) -> float:
    """Cross-traffic utilization of one fitted model (CT / bandwidth)."""
    return model.cross_traffic.mean_rate / max(
        model.params.bandwidth_bytes_per_sec, _EPS
    )


def _rescale_ct(
    ct: CrossTrafficEstimate, target_mean_rate: float
) -> CrossTrafficEstimate:
    """Scale a donor CT series to a target mean rate, keeping its shape
    (burst structure) intact."""
    current = ct.mean_rate
    if current < _EPS:
        # Donor had no CT: synthesize a flat series at the target level.
        rates = tuple(
            target_mean_rate for _ in ct.rates_bytes_per_sec
        )
        return CrossTrafficEstimate(
            bin_edges=ct.bin_edges,
            rates_bytes_per_sec=rates,
            busy_fraction=ct.busy_fraction,
        )
    scale = target_mean_rate / current
    return CrossTrafficEstimate(
        bin_edges=ct.bin_edges,
        rates_bytes_per_sec=tuple(
            r * scale for r in ct.rates_bytes_per_sec
        ),
        busy_fraction=ct.busy_fraction,
    )


def fit_distribution_from_paths(
    trace_paths: Sequence,
    workers: int = 1,
    cache_dir=None,
    fit_kwargs=None,
) -> ParameterDistribution:
    """Learn the joint distribution straight from saved trace files.

    Fitting fans out across ``workers`` processes through the runtime's
    content-addressed profile cache, so re-learning the distribution
    over a growing corpus only ever fits the *new* traces.  Traces that
    fail to fit (corrupt file, degenerate trace) are skipped — the
    distribution is learnt from whatever survives, matching the
    executor's never-kill-the-batch contract.
    """
    from repro.runtime.batch import fit_profiles
    from repro.runtime.executor import ExecutorConfig

    models, results = fit_profiles(
        trace_paths,
        fit_kwargs=fit_kwargs,
        cache_dir=cache_dir,
        config=ExecutorConfig(workers=workers),
    )
    fitted = [m for m in models if m is not None]
    if len(fitted) < 2:
        failures = [r.error.message for r in results if not r.ok]
        raise ValueError(
            "need at least two fittable traces; "
            f"{len(fitted)} fitted, failures: {failures}"
        )
    return fit_parameter_distribution(fitted)


def fit_parameter_distribution(
    models: Sequence[IBoxNetModel],
) -> ParameterDistribution:
    """Learn the joint log-space distribution from fitted models."""
    if len(models) < 2:
        raise ValueError("need at least two fitted models")
    rows = []
    for model in models:
        rows.append(
            [
                model.params.bandwidth_bytes_per_sec,
                model.params.propagation_delay,
                model.params.buffer_bytes,
                max(_ct_level(model), 1e-4),  # keep log finite
            ]
        )
    logs = np.log(np.asarray(rows))
    observed_levels = [row[3] for row in rows]
    return ParameterDistribution(
        log_mean=logs.mean(axis=0),
        log_cov=np.cov(logs, rowvar=False),
        source_models=list(models),
        max_ct_level=1.2 * max(max(observed_levels), 0.05),
    )
