"""Limits of model validity (§6, "Establishing the Limits of Model
Validity").

"Training data limits the ability of iBoxML to learn about the network.
For instance, if the sending rate in the training data never exceeded a
certain level R, even over short periods, it would not be possible for
iBoxML to accurately predict the output when the rate does exceed R.
Therefore ... establishing the limits of validity of the learnt model is
important.  Doing so would also help selectively gather new data that
would expand the region of validity of the model."

This module implements that idea: a :class:`ValidityRegion` captures the
per-feature support of the training corpus (a robust quantile envelope),
and scoring a test input stream reports how much of it falls outside —
per feature, per packet, and as a headline coverage number.  The
out-of-support mask also says *which* new data would expand validity.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.trace.features import packet_features
from repro.trace.records import Trace

DEFAULT_FEATURE_NAMES = (
    "sending_rate",
    "inter_send_spacing",
    "packet_size",
    "previous_delay",
)


@dataclass
class FeatureSupport:
    """Robust support interval of one feature in the training data."""

    name: str
    low: float
    high: float
    # Hard extremes, kept for reporting.
    observed_min: float
    observed_max: float

    def contains(self, values: np.ndarray, margin: float) -> np.ndarray:
        """Boolean mask of values inside the (margin-expanded) support."""
        width = max(self.high - self.low, 1e-12)
        lo = self.low - margin * width
        hi = self.high + margin * width
        return (values >= lo) & (values <= hi)


@dataclass
class ValidityReport:
    """Outcome of scoring a test input stream against a validity region."""

    coverage: float  # fraction of packets with ALL features in support
    per_feature_violation: Dict[str, float]
    out_of_support_mask: np.ndarray  # per packet

    @property
    def is_valid(self) -> bool:
        """Rule of thumb: predictions are trustworthy when >90 % of the
        input stream lies inside the training envelope."""
        return self.coverage >= 0.9

    def worst_feature(self) -> Optional[str]:
        if not self.per_feature_violation:
            return None
        name, value = max(
            self.per_feature_violation.items(), key=lambda kv: kv[1]
        )
        return name if value > 0 else None

    def format_report(self) -> str:
        lines = [
            f"validity coverage: {self.coverage:.1%} "
            f"({'OK' if self.is_valid else 'OUT OF VALIDITY REGION'})"
        ]
        for name, violation in sorted(
            self.per_feature_violation.items(), key=lambda kv: -kv[1]
        ):
            lines.append(f"  {name:>20s}: {violation:6.1%} out of support")
        return "\n".join(lines)


class ValidityRegion:
    """The support envelope of a training corpus, per input feature."""

    def __init__(
        self,
        quantile_low: float = 0.005,
        quantile_high: float = 0.995,
        margin: float = 0.05,
        feature_names: Sequence[str] = DEFAULT_FEATURE_NAMES,
    ):
        if not 0 <= quantile_low < quantile_high <= 1:
            raise ValueError("need 0 <= quantile_low < quantile_high <= 1")
        self.quantile_low = quantile_low
        self.quantile_high = quantile_high
        self.margin = margin
        self.feature_names = tuple(feature_names)
        self.supports: List[FeatureSupport] = []
        self._fitted = False

    def fit(
        self,
        traces: Sequence[Trace],
        ct_features: Optional[Sequence[np.ndarray]] = None,
    ) -> "ValidityRegion":
        """Learn the envelope from training traces (same feature layout as
        iBoxML: rate, spacing, size, previous delay[, CT])."""
        if not traces:
            raise ValueError("need at least one training trace")
        matrices = []
        for k, trace in enumerate(traces):
            ct = ct_features[k] if ct_features is not None else None
            matrices.append(packet_features(trace, cross_traffic=ct))
        stacked = np.concatenate(matrices, axis=0)
        names = list(self.feature_names)
        if stacked.shape[1] == len(names) + 1:
            names.append("cross_traffic")
        if stacked.shape[1] != len(names):
            raise ValueError(
                f"feature count {stacked.shape[1]} does not match names "
                f"{names}"
            )
        self.supports = [
            FeatureSupport(
                name=name,
                low=float(np.quantile(stacked[:, j], self.quantile_low)),
                high=float(np.quantile(stacked[:, j], self.quantile_high)),
                observed_min=float(stacked[:, j].min()),
                observed_max=float(stacked[:, j].max()),
            )
            for j, name in enumerate(names)
        ]
        self._fitted = True
        return self

    def score(
        self, trace: Trace, ct: Optional[np.ndarray] = None
    ) -> ValidityReport:
        """Score a test input stream against the learnt envelope."""
        if not self._fitted:
            raise RuntimeError("score called before fit()")
        features = packet_features(trace, cross_traffic=ct)
        if features.shape[1] != len(self.supports):
            raise ValueError(
                "test features do not match the fitted region "
                f"({features.shape[1]} vs {len(self.supports)} columns); "
                "did you forget (or add) the CT feature?"
            )
        inside = np.ones(len(features), dtype=bool)
        violations: Dict[str, float] = {}
        for j, support in enumerate(self.supports):
            ok = support.contains(features[:, j], self.margin)
            violations[support.name] = float(1.0 - ok.mean())
            inside &= ok
        return ValidityReport(
            coverage=float(inside.mean()),
            per_feature_violation=violations,
            out_of_support_mask=~inside,
        )
