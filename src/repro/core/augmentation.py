"""iBoxNet + behaviour discovery & learning (§5.1).

iBoxNet's single-bottleneck FIFO model produces **no** packet reordering;
SAX-based behaviour discovery (:mod:`repro.discovery`) surfaces that gap
(pattern 'a' in Fig. 8).  This module closes it: ML models trained on real
traces predict, per packet, whether it should be reordered, and the
predicted events are injected into iBoxNet's output by modifying delays.

Three predictors, matching the paper's Fig. 5 curves:

* :class:`LSTMReorderPredictor` — "we train an LSTM model (similar to that
  in Fig. 6) to predict whether a packet should be reordered";
* :class:`LinearReorderPredictor` — "a lightweight and much faster linear
  logistic regression model"; features: instantaneous sending rate,
  inter-packet spacing and the §3 cross-traffic estimate;
* :func:`naive_random_reordering` — the strawman ("we can easily induce
  any given packet reordering rate by simply choosing the appropriate
  number of packets at random"), which matches the rate but not the
  higher-order patterns.
"""

from __future__ import annotations

from typing import List, Optional, Protocol, Sequence

import numpy as np

from repro.core.iboxml import IBoxMLModel
from repro.ml.logistic import LogisticRegression
from repro.ml.model import BernoulliSequenceModel
from repro.ml.scalers import StandardScaler
from repro.trace.features import (
    inter_send_times,
    reordering_events,
    sending_rate_at_packets,
)
from repro.trace.records import PacketRecord, Trace


def reorder_labels(trace: Trace) -> np.ndarray:
    """Per-delivered-packet binary labels (send order).

    Label 1 means the packet arrived *before* its predecessor-in-send-order
    (a negative inter-arrival delta, i.e. it participates in a reordering
    event).  The first delivered packet is always 0.
    """
    events = reordering_events(trace)
    return np.concatenate(([False], events)).astype(int)


def reorder_features(trace: Trace) -> np.ndarray:
    """§5.1's predictor features for each *delivered* packet (send order):
    instantaneous sending rate, inter-packet spacing, CT estimate."""
    mask = trace.delivered_mask
    rate = sending_rate_at_packets(trace)[mask]
    spacing = inter_send_times(trace)[mask]
    ct = IBoxMLModel.estimate_ct_feature(trace)[mask]
    return np.column_stack([rate, spacing, ct])


class ReorderPredictor(Protocol):
    """Per-packet reordering probability model."""

    def fit(self, traces: Sequence[Trace]) -> "ReorderPredictor":
        ...

    def predict_proba(self, trace: Trace) -> np.ndarray:
        ...


class LinearReorderPredictor:
    """Logistic regression on [rate, spacing, CT] (the "iBoxNet + Linear"
    curve of Fig. 5)."""

    def __init__(self, pos_weight: float = 1.0, seed: int = 0):
        # pos_weight stays at 1 by default: the predicted probabilities are
        # *sampled* to inject events, so they must be calibrated to the
        # true base rate, not tilted for classification recall.
        self.model = LogisticRegression(
            lr=0.5, epochs=400, pos_weight=pos_weight, seed=seed
        )

    def fit(self, traces: Sequence[Trace]) -> "LinearReorderPredictor":
        features = np.concatenate([reorder_features(t) for t in traces])
        labels = np.concatenate([reorder_labels(t) for t in traces])
        self.model.fit(features, labels)
        return self

    def predict_proba(self, trace: Trace) -> np.ndarray:
        """Reordering probability for each delivered packet (send order)."""
        return self.model.predict_proba(reorder_features(trace))


class LSTMReorderPredictor:
    """Sequence classifier over the same features (the "iBoxNet + LSTM"
    curve of Fig. 5); sees temporal context the linear model cannot."""

    def __init__(
        self,
        hidden_dim: int = 16,
        num_layers: int = 1,
        epochs: int = 15,
        lr: float = 5e-3,
        seq_len: int = 200,
        pos_weight: float = 1.0,
        seed: int = 0,
    ):
        self.model = BernoulliSequenceModel(
            input_dim=3,
            hidden_dim=hidden_dim,
            num_layers=num_layers,
            seed=seed,
        )
        self.scaler = StandardScaler()
        self.epochs = epochs
        self.lr = lr
        self.seq_len = seq_len
        self.pos_weight = pos_weight
        self.seed = seed
        self._fitted = False
        # Post-hoc odds correction so the *mean* predicted probability
        # matches the training base rate — required because the predicted
        # probabilities are sampled to inject events, and a modestly
        # miscalibrated sequence model would multiply the reordering rate.
        self._odds_correction = 1.0

    def fit(self, traces: Sequence[Trace]) -> "LSTMReorderPredictor":
        all_features = [reorder_features(t) for t in traces]
        all_labels = [reorder_labels(t) for t in traces]
        self.scaler.fit(np.concatenate(all_features))
        sequences: List[np.ndarray] = []
        labels: List[np.ndarray] = []
        for feats, labs in zip(all_features, all_labels):
            scaled = self.scaler.transform(feats)
            for start in range(0, len(feats), self.seq_len):
                chunk = slice(start, start + self.seq_len)
                if len(scaled[chunk]) < 2:
                    continue
                sequences.append(scaled[chunk])
                labels.append(labs[chunk])
        self.model.fit(
            sequences,
            labels,
            epochs=self.epochs,
            lr=self.lr,
            pos_weight=self.pos_weight,
            seed=self.seed,
        )
        self._fitted = True
        base_rate = float(np.concatenate(all_labels).mean())
        raw = np.concatenate(
            [self._raw_proba(feats) for feats in all_features]
        )
        mean_raw = float(raw.mean())
        if base_rate > 0 and 0 < mean_raw < 1:
            self._odds_correction = (
                base_rate / (1 - base_rate) * (1 - mean_raw) / mean_raw
            )
        return self

    def _raw_proba(self, feats: np.ndarray) -> np.ndarray:
        scaled = self.scaler.transform(feats)
        return self.model.predict_proba(scaled)

    def predict_proba(self, trace: Trace) -> np.ndarray:
        if not self._fitted:
            raise RuntimeError("predict called before fit()")
        raw = self._raw_proba(reorder_features(trace))
        c = self._odds_correction
        return raw * c / (1.0 - raw + raw * c)


def apply_reordering(
    trace: Trace,
    reorder_flags: np.ndarray,
    rng: Optional[np.random.Generator] = None,
    epsilon: float = 5e-4,
) -> Trace:
    """Inject reordering events into a (typically iBoxNet-produced) trace.

    For each delivered packet flagged in ``reorder_flags`` (boolean, one
    per delivered packet in send order), the packet's delivery time is
    pulled *before* its predecessor's arrival — "modifying their delays"
    (§5.1) — producing the negative inter-arrival delta of SAX pattern 'a'.
    Delivery can never precede the packet's own send time.
    """
    delivered_idx = np.flatnonzero(trace.delivered_mask)
    if len(reorder_flags) != len(delivered_idx):
        raise ValueError(
            f"need one flag per delivered packet "
            f"({len(delivered_idx)}), got {len(reorder_flags)}"
        )
    if rng is None:
        rng = np.random.default_rng(0)
    records = [
        PacketRecord(
            uid=r.uid,
            seq=r.seq,
            size=r.size,
            sent_at=r.sent_at,
            delivered_at=r.delivered_at,
            is_retransmit=r.is_retransmit,
        )
        for r in trace.records
    ]
    for k in range(1, len(delivered_idx)):
        if not reorder_flags[k]:
            continue
        i = delivered_idx[k]
        prev = delivered_idx[k - 1]
        target = records[prev].delivered_at - epsilon * (1 + rng.random())
        if target > records[i].sent_at:
            records[i].delivered_at = target
    return Trace(
        f"{trace.flow_id}+reorder",
        records,
        duration=trace.duration,
        protocol=trace.protocol,
        metadata={**trace.metadata, "augmented": "reordering"},
    )


def sample_reorder_flags(
    probabilities: np.ndarray,
    rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """Draw Bernoulli reorder flags from per-packet probabilities."""
    if rng is None:
        rng = np.random.default_rng(0)
    return rng.random(len(probabilities)) < np.asarray(probabilities)


def naive_random_reordering(
    trace: Trace,
    rate: float,
    rng: Optional[np.random.Generator] = None,
) -> Trace:
    """The §5.1 strawman: flag a uniform-random ``rate`` fraction of
    packets.  Matches the aggregate reordering rate but not the burst
    structure (higher-order SAX patterns)."""
    if not 0 <= rate <= 1:
        raise ValueError(f"rate must be in [0, 1], got {rate}")
    if rng is None:
        rng = np.random.default_rng(0)
    n = int(trace.delivered_mask.sum())
    flags = rng.random(n) < rate
    flags[0] = False
    return apply_reordering(trace, flags, rng=rng)


def augment_iboxnet_trace(
    simulated: Trace,
    predictor: ReorderPredictor,
    seed: int = 0,
) -> Trace:
    """The full §5.1 pipeline step: predict per-packet reordering on the
    iBoxNet-simulated trace and inject the sampled events."""
    rng = np.random.default_rng(seed)
    probs = predictor.predict_proba(simulated)
    flags = sample_reorder_flags(probs, rng)
    if len(flags) > 0:
        flags[0] = False
    return apply_reordering(simulated, flags, rng=rng)
