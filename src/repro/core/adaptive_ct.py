"""Learning adaptive cross traffic (§6, "Learning adaptive cross traffic").

"Merely replaying the estimated cross-traffic is not ideal, since it would
not account for the cross-traffic adapting to the sender.  Learning an
adaptive cross-traffic model, say by expressing it in terms of a certain
number of flows of TCP Cubic (the dominant transport protocol in the
Internet), is an interesting research challenge."

This module takes up that challenge at the scale the sentence suggests:
given a learnt iBoxNet model, it searches over a small number of
closed-loop Cubic cross-traffic flows (plus an optional residual open-loop
component) for the combination whose emulation best reproduces the
training trace's summary behaviour.  The resulting
:class:`AdaptiveCTModel` simulates treatment protocols against *reactive*
competition: a greedy treatment steals bandwidth from the Cubic cross
flows, which back off — something the non-adaptive replay can never do.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional, Tuple

import numpy as np

from repro.core.iboxnet import IBoxNetModel
from repro.simulation.topology import (
    ConstantBandwidth,
    FlowCT,
    PathConfig,
    PoissonCT,
    run_flow,
)
from repro.trace.metrics import summarize
from repro.trace.records import Trace


@dataclass(frozen=True)
class AdaptiveCTModel:
    """An iBoxNet path model with cross traffic expressed as Cubic flows.

    ``capacity_bytes_per_sec`` is the *hypothesised true* link capacity:
    when the training flow shared the bottleneck with ``n`` equal
    closed-loop flows, the §3 peak-receive-rate estimator reads roughly
    ``capacity / (n + 1)``, so each candidate ``n`` implies its own
    capacity correction — this inversion is exactly what makes expressing
    CT "in terms of a certain number of flows of TCP Cubic" (§6) more than
    a re-labelling of the replay.
    """

    base: IBoxNetModel
    n_cubic_flows: int
    residual_rate_bytes_per_sec: float
    capacity_bytes_per_sec: float
    fit_error: float

    def path_config(self) -> PathConfig:
        cross_traffic: Tuple = tuple(
            FlowCT(protocol="cubic") for _ in range(self.n_cubic_flows)
        )
        if self.residual_rate_bytes_per_sec > 0:
            cross_traffic = cross_traffic + (
                PoissonCT(
                    rate_bytes_per_sec=self.residual_rate_bytes_per_sec
                ),
            )
        # The §3 buffer estimate is (observed service rate) x (delay
        # spread); under the shared-link hypothesis the true service rate
        # is the corrected capacity, so the buffer scales with it.
        scale = self.capacity_bytes_per_sec / max(
            self.base.params.bandwidth_bytes_per_sec, 1.0
        )
        return PathConfig(
            bandwidth=ConstantBandwidth(self.capacity_bytes_per_sec),
            propagation_delay=self.base.params.propagation_delay,
            buffer_bytes=self.base.params.buffer_bytes * scale,
            cross_traffic=cross_traffic,
        )

    def simulate(
        self, protocol: str, duration: float, seed: int
    ) -> Trace:
        """Emulate ``protocol`` against the *adaptive* cross traffic."""
        result = run_flow(
            self.path_config(), protocol, duration=duration, seed=seed,
            flow_id=f"adaptive-{protocol}-{seed}",
        )
        return result.trace

    def __str__(self) -> str:
        residual = self.residual_rate_bytes_per_sec / 125_000
        return (
            f"AdaptiveCTModel({self.n_cubic_flows} cubic CT flows, "
            f"residual {residual:.2f} Mb/s, fit error {self.fit_error:.3f})"
        )


def _summary_distance(a, b) -> float:
    """Scale-free distance between two run summaries."""
    terms = []
    for getter, floor in (
        (lambda s: s.mean_rate_mbps, 0.1),
        (lambda s: s.p95_delay_ms, 5.0),
        (lambda s: s.loss_percent, 0.5),
    ):
        ga, gb = getter(a), getter(b)
        if np.isnan(ga) or np.isnan(gb):
            continue
        scale = max(abs(gb), floor)
        terms.append(abs(ga - gb) / scale)
    return float(np.mean(terms)) if terms else float("inf")


def fit_adaptive_ct(
    model: IBoxNetModel,
    training_trace: Trace,
    max_flows: int = 3,
    duration: Optional[float] = None,
    seed: int = 0,
    residual_fraction_grid: Tuple[float, ...] = (0.0, 0.5),
) -> AdaptiveCTModel:
    """Express the learnt cross traffic as N Cubic flows (+ residual).

    The search is the small combinatorial sweep the paper's §4 warns makes
    *general* network-model learning expensive — which is exactly why it
    stays feasible here: the static parameters are already pinned by the
    closed-form estimators, leaving a handful of candidate workloads.
    Each candidate emulates the training protocol once; the candidate
    whose summary best matches the training trace wins.
    """
    if duration is None:
        duration = training_trace.duration
    target = summarize(training_trace)
    ct_volume = model.cross_traffic.mean_rate

    best: Optional[AdaptiveCTModel] = None
    for n_flows in range(0, max_flows + 1):
        for residual_fraction in residual_fraction_grid:
            residual = residual_fraction * ct_volume
            # n equal closed-loop competitors imply the training flow saw
            # only a 1/(n+1) share: correct the capacity hypothesis.
            capacity = model.params.bandwidth_bytes_per_sec * (n_flows + 1)
            candidate = AdaptiveCTModel(
                base=model,
                n_cubic_flows=n_flows,
                residual_rate_bytes_per_sec=residual,
                capacity_bytes_per_sec=capacity,
                fit_error=float("inf"),
            )
            trace = run_flow(
                candidate.path_config(),
                training_trace.protocol
                if training_trace.protocol != "unknown"
                else "cubic",
                duration=duration,
                seed=seed,
                flow_id=f"fit-{n_flows}-{residual_fraction}",
            ).trace
            error = _summary_distance(summarize(trace), target)
            candidate = replace(candidate, fit_error=error)
            if best is None or error < best.fit_error:
                best = candidate
    assert best is not None
    return best


def adaptivity_demonstration(
    model: AdaptiveCTModel,
    duration: float = 10.0,
    seed: int = 0,
) -> dict:
    """Show what replay cannot: the cross traffic *yields* to a greedy
    sender.  Returns the CT goodput share when competing against Vegas
    (gentle) vs Cubic (greedy); adaptive CT gives up more to Cubic."""
    shares = {}
    for protocol in ("vegas", "cubic"):
        result = run_flow(
            model.path_config(), protocol, duration=duration, seed=seed,
            flow_id=f"demo-{protocol}",
        )
        main_bytes = float(
            result.trace.sizes[result.trace.delivered_mask].sum()
        )
        shares[protocol] = main_bytes / duration
    return shares
