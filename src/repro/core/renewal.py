"""The perpetual-renewal loop (§5.3), operationalised.

The paper's recipe for keeping a simulator honest: "(i) a continual inflow
of new data, (ii) leveraging the latest advances in ML ... and (iii)
leveraging networking domain knowledge to identify behaviors that the
simulator should capture, in turn guiding the ML formulation and
modeling."

:func:`renewal_cycle` runs one full turn of that loop as code:

1. **Diff** — SAX-discretize ground-truth and simulated traces and diff
   their pattern inventories (§5.1 discovery).
2. **Triage** — rank the behaviours present in reality but missing from
   the simulator by frequency (the "domain expert decides what is
   interesting" step, automated as a frequency threshold).
3. **Repair** — apply the registered augmentations (currently: the
   reordering predictors) for behaviours they cover.
4. **Verify** — re-diff after augmentation and quantify the closed gap.

The returned :class:`RenewalReport` records the before/after inventories,
so successive cycles (new data, new augmentations) can be compared — the
"perpetual" part.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.core.augmentation import (
    LSTMReorderPredictor,
    augment_iboxnet_trace,
)
from repro.discovery.motifs import PatternDiff, aggregate_frequencies, diff_patterns
from repro.discovery.sax import positive_delta_breakpoints, sax_inter_arrival
from repro.trace.features import arrival_order_deltas
from repro.trace.records import Trace

# Behaviours the repair step knows how to inject, keyed by the SAX
# symbol(s) whose absence indicates them.
REORDERING_SYMBOL = "a"


@dataclass
class RenewalReport:
    """Outcome of one renewal cycle."""

    missing_before: Dict[str, float]
    missing_after: Dict[str, float]
    repaired_behaviours: List[str]
    unrepaired_behaviours: List[str]
    gap_closed: float  # fraction of missing-frequency mass recovered
    augmented_traces: List[Trace] = field(default_factory=list)

    def recovery(self, behaviour: str) -> float:
        """Fraction of one behaviour's missing frequency mass recovered."""
        before = self.missing_before.get(behaviour, 0.0)
        if before <= 0:
            return 1.0
        after = self.missing_after.get(behaviour, 0.0)
        return (before - after) / before

    def format_report(self) -> str:
        lines = ["perpetual-renewal cycle"]
        lines.append(
            "  discovered missing behaviours: "
            + (
                ", ".join(
                    f"'{p}' ({100 * f:.2f}%)"
                    for p, f in sorted(
                        self.missing_before.items(), key=lambda kv: -kv[1]
                    )
                )
                or "(none)"
            )
        )
        lines.append(
            f"  repaired: {', '.join(self.repaired_behaviours) or '(none)'}"
        )
        if self.unrepaired_behaviours:
            lines.append(
                "  still missing (need new augmentations): "
                + ", ".join(self.unrepaired_behaviours)
            )
        lines.append(f"  frequency mass recovered: {self.gap_closed:.0%}")
        return "\n".join(lines)


def discover_missing_behaviours(
    ground_truth: Sequence[Trace],
    simulated: Sequence[Trace],
    breakpoints: Optional[np.ndarray] = None,
    min_frequency: float = 1e-3,
) -> Dict[str, float]:
    """Step 1+2: the diff, thresholded to "interesting" frequencies."""
    if breakpoints is None:
        reference = np.concatenate(
            [arrival_order_deltas(t) for t in ground_truth]
        )
        breakpoints = positive_delta_breakpoints(reference)
    gt_sax = [
        sax_inter_arrival(t, breakpoints=breakpoints) for t in ground_truth
    ]
    sim_sax = [
        sax_inter_arrival(t, breakpoints=breakpoints) for t in simulated
    ]
    diff = diff_patterns(
        gt_sax, sim_sax, length=1, min_frequency=min_frequency
    )
    return dict(diff.only_ground_truth)


def renewal_cycle(
    ground_truth: Sequence[Trace],
    simulated: Sequence[Trace],
    training_traces: Optional[Sequence[Trace]] = None,
    min_frequency: float = 1e-3,
    predictor_factory: Optional[Callable] = None,
    seed: int = 0,
) -> RenewalReport:
    """Run one full renewal turn over a simulated corpus.

    ``training_traces`` (defaults to ``ground_truth``) train the repair
    models; ``predictor_factory`` overrides the default reorder predictor
    (e.g. to use the linear model for speed).
    """
    if training_traces is None:
        training_traces = ground_truth
    reference = np.concatenate(
        [arrival_order_deltas(t) for t in ground_truth]
    )
    breakpoints = positive_delta_breakpoints(reference)

    missing_before = discover_missing_behaviours(
        ground_truth, simulated, breakpoints, min_frequency
    )

    repaired: List[str] = []
    unrepaired: List[str] = []
    augmented = list(simulated)
    if REORDERING_SYMBOL in missing_before:
        factory = predictor_factory or (
            lambda: LSTMReorderPredictor(epochs=8, seed=seed)
        )
        predictor = factory().fit(list(training_traces))
        augmented = [
            augment_iboxnet_trace(t, predictor, seed=seed + i)
            for i, t in enumerate(simulated)
        ]
        repaired.append(REORDERING_SYMBOL)
    for behaviour in missing_before:
        if behaviour not in repaired:
            unrepaired.append(behaviour)

    missing_after = discover_missing_behaviours(
        ground_truth, augmented, breakpoints, min_frequency
    )
    mass_before = sum(missing_before.values())
    # Mass still missing afterwards, counting only behaviours that were
    # missing before (new artefacts are a different failure mode).
    mass_after = sum(
        missing_after.get(p, 0.0) for p in missing_before
    )
    gap_closed = (
        (mass_before - mass_after) / mass_before if mass_before > 0 else 1.0
    )
    return RenewalReport(
        missing_before=missing_before,
        missing_after=missing_after,
        repaired_behaviours=repaired,
        unrepaired_behaviours=unrepaired,
        gap_closed=float(gap_closed),
        augmented_traces=augmented,
    )
