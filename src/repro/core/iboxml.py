"""iBoxML: the ML-based approach to network path simulation (§4).

A deep LSTM state-space model learns ``P(d_t | x_0..t, d_0..t-1)`` from
input/output traces: the input features ``x_t`` are the paper's §4.1 set
(instantaneous sending rate, inter-packet spacing, packet size, previous
delay) optionally augmented with the §3 cross-traffic estimate (§5.2), and
the output is a Gaussian over the packet's one-way delay.

Training is teacher-forced (ground-truth previous delay in the features);
inference is *free-running*: the model's own predicted delays are fed back
as the previous-delay feature while unrolling over the test input stream —
"During inference, we feed the predicted delays as we unroll the LSTM
network over time" (§4.1, blue dashed lines in Fig. 6).

The control-loop bias of §4.2 falls out of this design: if training traces
come from a delay-sensitive control loop, sending rate and delay are
negatively correlated in the data, and a model without the cross-traffic
input will wrongly predict low delay for a high-rate open-loop sender.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro import obs
from repro.core.cross_traffic import estimate_cross_traffic, per_packet_cross_traffic
from repro.core.static_params import estimate_static_params
from repro.guard.numeric import sanitize_training_arrays
from repro.ml.model import (
    BernoulliSequenceModel,
    GaussianSequenceModel,
    TrainingLog,
)
from repro.ml.layers import _sigmoid
from repro.ml.scalers import StandardScaler
from repro.trace.features import packet_features
from repro.trace.records import PacketRecord, Trace

# Index of the previous-delay column in the §4.1 feature layout
# [rate, spacing, size, prev_delay, (ct)].
_PREV_DELAY_COL = 3


@dataclass(frozen=True)
class IBoxMLConfig:
    """Hyper-parameters for the iBoxML state-space model.

    The paper used a 4-layer, ~2 M-parameter LSTM on a V100; on CPU-only
    numpy we default to a 2-layer, 32-unit stack, which preserves the model
    family while keeping training in seconds.  ``include_cross_traffic``
    switches on the §5.2 CT input feature.
    """

    hidden_dim: int = 32
    num_layers: int = 2
    include_cross_traffic: bool = False
    epochs: int = 15
    batch_size: int = 8
    lr: float = 3e-3
    train_seq_len: int = 200
    clip_norm: float = 5.0
    seed: int = 0
    min_delay_floor: float = 1e-3  # predictions clipped to at least this
    # Std-dev (in scaled units) of noise injected into the previous-delay
    # feature during training.  Free-running inference feeds the model its
    # own predictions, so training must tolerate imperfect feedback — the
    # control-loop cousin of scheduled sampling (mitigates exposure bias).
    feedback_noise: float = 0.2
    # DAgger-style exposure-bias correction: after each round, the
    # previous-delay feature of the training data is recomputed from the
    # model's own free-running rollout, and training continues against the
    # ground-truth targets.  One round = plain teacher forcing.
    rollout_rounds: int = 3
    # Lag-1 autocorrelation of the sampling noise in generative mode.
    # Queueing delay is a smooth process: consecutive packets see almost
    # the same queue, so drawing i.i.d. noise per packet would fabricate
    # reordering at a massive rate.  AR(1) noise keeps the marginal
    # distribution N(mu, sigma^2) while making sample paths smooth.
    # ``None`` (default) estimates rho from the training residuals'
    # lag-1 autocorrelation.
    sample_ar_rho: Optional[float] = None
    # §4.1: "the output is a real-valued delay (or packet loss
    # indicator)".  When enabled, a parallel Bernoulli sequence model is
    # trained on per-packet loss labels and ``predict_trace`` samples
    # losses (delivered_at = nan, the paper's "infinite delay").
    predict_loss: bool = False
    loss_head_epochs: int = 8
    # Arithmetic for the free-running unroll (§4.2: inference speed is
    # what keeps iBoxML out of emulation).  "float32" halves the memory
    # traffic of the per-step GEMVs; predictions then agree with the
    # float64 path to ~1e-5 relative (see PERFORMANCE.md), which is far
    # below the model's own sigma.  Training always runs in float64.
    unroll_dtype: str = "float64"

    @property
    def input_dim(self) -> int:
        return 5 if self.include_cross_traffic else 4


class IBoxMLModel:
    """The trained iBoxML simulator for a path (or ensemble of paths)."""

    def __init__(self, config: Optional[IBoxMLConfig] = None):
        self.config = config if config is not None else IBoxMLConfig()
        self.model = GaussianSequenceModel(
            input_dim=self.config.input_dim,
            hidden_dim=self.config.hidden_dim,
            num_layers=self.config.num_layers,
            seed=self.config.seed,
        )
        self.feature_scaler = StandardScaler()
        self.target_scaler = StandardScaler()
        self.training_log: Optional[TrainingLog] = None
        # Residual lag-1 autocorrelation, estimated during fit and used by
        # the AR(1) generative sampler when the config leaves rho to data.
        self.fitted_rho_: float = 0.97
        # Optional §4.1 loss-indicator head (see config.predict_loss).
        self.loss_model: Optional[BernoulliSequenceModel] = None
        self._loss_odds_correction = 1.0
        self._fitted = False

    # ------------------------------------------------------------------
    # Feature assembly
    # ------------------------------------------------------------------
    def _trace_features(
        self, trace: Trace, ct: Optional[np.ndarray]
    ) -> np.ndarray:
        if self.config.include_cross_traffic:
            if ct is None:
                ct = self.estimate_ct_feature(trace)
            return packet_features(trace, cross_traffic=ct)
        return packet_features(trace)

    @staticmethod
    def estimate_ct_feature(trace: Trace) -> np.ndarray:
        """Per-packet CT estimate via the §3 domain-knowledge pipeline.

        The estimate is normalised by the estimated bottleneck bandwidth
        (cross-traffic *utilization* rather than an absolute rate), so the
        feature transfers across paths of different capacities — a model
        trained on a mix of paths sees "half the link is foreign traffic"
        as the same signal everywhere.
        """
        params = estimate_static_params(trace)
        estimate = estimate_cross_traffic(trace, params)
        rates = per_packet_cross_traffic(trace, estimate)
        return rates / max(params.bandwidth_bytes_per_sec, 1.0)

    # ------------------------------------------------------------------
    # Training
    # ------------------------------------------------------------------
    def fit(
        self,
        traces: Sequence[Trace],
        ct_features: Optional[Sequence[Optional[np.ndarray]]] = None,
        verbose: bool = False,
    ) -> TrainingLog:
        """Teacher-forced training on a collection of traces.

        ``ct_features[i]`` optionally supplies a precomputed per-packet CT
        series for ``traces[i]``; otherwise (when the config enables CT) it
        is estimated from the trace itself.
        """
        if not traces:
            raise ValueError("need at least one training trace")
        if ct_features is not None and len(ct_features) != len(traces):
            raise ValueError("ct_features must align with traces")
        with obs.span("ml.fit", traces=len(traces)):
            return self._fit(traces, ct_features, verbose)

    def _fit(
        self,
        traces: Sequence[Trace],
        ct_features: Optional[Sequence[Optional[np.ndarray]]],
        verbose: bool,
    ) -> TrainingLog:
        all_features: List[np.ndarray] = []
        all_targets: List[np.ndarray] = []
        all_masks: List[np.ndarray] = []
        for k, trace in enumerate(traces):
            ct = ct_features[k] if ct_features is not None else None
            feats = self._trace_features(trace, ct)
            delays = trace.delays.copy()
            mask = trace.delivered_mask.copy()
            # Lost packets have no target; fill with a value that is masked
            # out so scaling statistics are not corrupted.
            delays[~mask] = 0.0
            # Non-finite rows (NaN bursts, infinities that survived
            # upstream repair) would poison the scaler statistics and
            # every gradient after them; mask and zero them instead.
            feats, delays, mask, _ = sanitize_training_arrays(
                feats, delays, mask
            )
            all_features.append(feats)
            all_targets.append(delays)
            all_masks.append(mask)

        stacked_features = np.concatenate(all_features, axis=0)
        delivered_targets = np.concatenate(
            [t[m] for t, m in zip(all_targets, all_masks)]
        )
        self.feature_scaler.fit(stacked_features)
        self.target_scaler.fit(delivered_targets.reshape(-1, 1))

        rounds = max(1, self.config.rollout_rounds)
        epochs_per_round = max(1, self.config.epochs // rounds)
        log = TrainingLog()
        features_current = [f.copy() for f in all_features]
        for round_index in range(rounds):
            if round_index > 0:
                # Exposure-bias correction: replace the previous-delay
                # column with the model's own free-running rollout so later
                # epochs learn to correct drift along trajectories the
                # model will actually visit at inference time.
                self._fitted = True
                for feats in features_current:
                    rollout = self._unroll_features(feats, sample=False)
                    feats[:, _PREV_DELAY_COL] = np.concatenate(
                        ([0.0], rollout[:-1])
                    )
            sequences, targets, masks = self._build_subsequences(
                features_current, all_targets, all_masks, round_index
            )
            round_log = self.model.fit(
                sequences,
                targets,
                masks,
                epochs=epochs_per_round,
                batch_size=self.config.batch_size,
                lr=self.config.lr,
                clip_norm=self.config.clip_norm,
                seed=self.config.seed + round_index,
                verbose=verbose,
            )
            log.losses.extend(round_log.losses)
            log.grad_norms.extend(round_log.grad_norms)
        self.training_log = log
        self._fitted = True
        self.fitted_rho_ = self._estimate_residual_rho(
            features_current, all_targets, all_masks
        )
        if self.config.predict_loss:
            self._fit_loss_head(all_features, all_masks)
        return self.training_log

    def _fit_loss_head(
        self,
        all_features: Sequence[np.ndarray],
        all_masks: Sequence[np.ndarray],
    ) -> None:
        """Train the §4.1 loss-indicator head (label 1 = packet lost)."""
        self.loss_model = BernoulliSequenceModel(
            input_dim=self.config.input_dim,
            hidden_dim=max(8, self.config.hidden_dim // 2),
            num_layers=1,
            seed=self.config.seed + 3,
        )
        sequences: List[np.ndarray] = []
        labels: List[np.ndarray] = []
        seq_len = self.config.train_seq_len
        for feats, mask in zip(all_features, all_masks):
            scaled = self.feature_scaler.transform(feats)
            lost = (~mask).astype(float)
            for start in range(0, len(feats), seq_len):
                chunk = slice(start, start + seq_len)
                if len(scaled[chunk]) < 2:
                    continue
                sequences.append(scaled[chunk])
                labels.append(lost[chunk])
        self.loss_model.fit(
            sequences,
            labels,
            epochs=self.config.loss_head_epochs,
            lr=self.config.lr,
            seed=self.config.seed + 3,
        )
        # Calibrate so the mean predicted probability matches the base
        # loss rate (the probabilities are sampled, same rationale as the
        # reorder predictors).
        base_rate = float(
            np.mean([lab.mean() for lab in labels]) if labels else 0.0
        )
        raw = np.concatenate(
            [self.loss_model.predict_proba(s) for s in sequences]
        )
        mean_raw = float(raw.mean())
        if 0 < base_rate < 1 and 0 < mean_raw < 1:
            self._loss_odds_correction = (
                base_rate / (1 - base_rate) * (1 - mean_raw) / mean_raw
            )

    def predict_loss_proba(
        self, trace: Trace, ct: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """Per-packet loss probability (requires ``predict_loss=True``)."""
        if self.loss_model is None:
            raise RuntimeError(
                "loss head not trained; set config.predict_loss=True"
            )
        feats = self._trace_features(trace, ct)
        scaled = self.feature_scaler.transform(feats)
        raw = self.loss_model.predict_proba(scaled)
        c = self._loss_odds_correction
        return raw * c / (1.0 - raw + raw * c)

    def _estimate_residual_rho(
        self,
        all_features: Sequence[np.ndarray],
        all_targets: Sequence[np.ndarray],
        all_masks: Sequence[np.ndarray],
    ) -> float:
        """Choose the AR(1) coefficient so the sampler's one-step noise
        matches the ground truth's one-step delay volatility.

        The model's sigma reflects *trajectory-level* uncertainty (how far
        the free-running mean can drift from truth), but what governs
        packet-level realism — in particular the reordering rate, Fig. 5 —
        is the *step* volatility ``std(d_t - d_{t-1})``.  For an AR(1)
        process with marginal std sigma, the step std is
        ``sigma * sqrt(2 * (1 - rho))``; solving for rho anchors the
        sampler to the data's smoothness.
        """
        step_diffs: List[np.ndarray] = []
        sigmas: List[float] = []
        for feats, tgt, mask in zip(all_features, all_targets, all_masks):
            if mask.sum() < 3:
                continue
            scaled_tgt = self.target_scaler.transform_column(tgt, 0)[mask]
            step_diffs.append(np.diff(scaled_tgt))
            scaled = self.feature_scaler.transform(feats)
            _, log_sigma = self.model.forward(scaled[None])
            sigmas.append(float(np.exp(log_sigma[0][mask]).mean()))
        if not step_diffs or not sigmas:
            return 0.97
        pooled = np.concatenate(step_diffs)
        # Robust scale: the Delta-delay distribution is leptokurtic (tiny
        # in-burst steps, rare multi-ms jumps); a plain std would be blown
        # up by the tails and make the sampler far too jumpy.
        step_std = 1.4826 * float(np.median(np.abs(pooled)))
        sigma = float(np.mean(sigmas))
        if sigma < 1e-9:
            return 0.97
        one_minus_rho = 0.5 * (step_std / sigma) ** 2
        rho = 1.0 - one_minus_rho
        return min(0.99999, max(0.0, rho))

    def _build_subsequences(
        self,
        all_features: Sequence[np.ndarray],
        all_targets: Sequence[np.ndarray],
        all_masks: Sequence[np.ndarray],
        round_index: int,
    ):
        sequences: List[np.ndarray] = []
        targets: List[np.ndarray] = []
        masks: List[np.ndarray] = []
        seq_len = self.config.train_seq_len
        noise_rng = np.random.default_rng(
            self.config.seed + 17 + round_index
        )
        for feats, tgt, mask in zip(all_features, all_targets, all_masks):
            scaled_x = self.feature_scaler.transform(feats)
            scaled_y = self.target_scaler.transform_column(tgt, 0)
            if self.config.feedback_noise > 0:
                scaled_x = scaled_x.copy()
                scaled_x[:, _PREV_DELAY_COL] += noise_rng.normal(
                    0.0, self.config.feedback_noise, size=len(scaled_x)
                )
            for start in range(0, len(feats), seq_len):
                chunk = slice(start, start + seq_len)
                if mask[chunk].sum() < 2:
                    continue
                sequences.append(scaled_x[chunk])
                targets.append(scaled_y[chunk])
                masks.append(mask[chunk])
        if not sequences:
            raise ValueError("no usable training subsequences")
        return sequences, targets, masks

    # ------------------------------------------------------------------
    # Free-running inference
    # ------------------------------------------------------------------
    def predict_delays(
        self,
        trace: Trace,
        ct: Optional[np.ndarray] = None,
        sample: bool = True,
        seed: int = 0,
        dtype: Optional[str] = None,
    ) -> np.ndarray:
        """Unroll the model over ``trace``'s *input* stream.

        Only the sender-side columns of the trace are consumed (send times,
        sizes — the §4.1 replay protocol: "we tested by replaying the
        sending rate time series from the test set"); ground-truth delays
        are never read.  Returns a per-packet delay prediction in seconds.

        ``sample=True`` draws each delay from the predicted Gaussian (the
        generative mode that reproduces delay *distributions*, Figs. 5/7);
        ``sample=False`` returns the mean (point forecasts, Fig. 4-style
        series comparisons).  ``dtype`` overrides
        :attr:`IBoxMLConfig.unroll_dtype` for this call ("float32" is the
        fast path; see PERFORMANCE.md for the accuracy contract).
        """
        if not self._fitted:
            raise RuntimeError("predict called before fit()")
        feats = self._trace_features(trace, ct)
        return self._unroll_features(feats, sample=sample, seed=seed, dtype=dtype)

    def _unroll_features(
        self,
        feats: np.ndarray,
        sample: bool,
        seed: int = 0,
        dtype: Optional[str] = None,
    ) -> np.ndarray:
        """Free-running unroll over a raw (unscaled) feature matrix."""
        n = len(feats)
        if n == 0:
            return np.zeros(0)
        with obs.span("ml.unroll", packets=n, sample=sample):
            wall0 = time.perf_counter()
            out = self._unroll_features_inner(feats, sample, seed, dtype)
            wall = time.perf_counter() - wall0
            if wall > 0:
                obs.metrics().histogram(
                    "ml.packets_per_sec", obs.RATE_BUCKETS
                ).observe(n / wall)
        return out

    def _unroll_features_inner(
        self,
        feats: np.ndarray,
        sample: bool,
        seed: int,
        dtype: Optional[str] = None,
    ) -> np.ndarray:
        """The unroll hot loop (§4.2's bottleneck), optimized three ways:

        1. the layer-0 input projection is precomputed for the *whole*
           sequence in one GEMM — only the previous-delay column is
           dynamic, and its contribution is a rank-1 per-step add;
        2. the loop runs on 1-D vectors with the Gaussian heads inlined
           as dot products and the scalers applied as scalar arithmetic
           (the generic path built three throwaway arrays per packet);
        3. all weights are gathered (and optionally cast to float32, the
           ``unroll_dtype`` fast path) once, outside the loop.

        In float64 the result is fp-rounding-identical to stepping the
        model with :meth:`GaussianSequenceModel.step` (same operations,
        same split-GEMM association; golden test in
        ``tests/test_ml_lstm_golden.py``).
        """
        n = len(feats)
        np_dtype = np.dtype(dtype or self.config.unroll_dtype)
        scaled = np.ascontiguousarray(
            self.feature_scaler.transform(feats), dtype=np_dtype
        )
        rng = np.random.default_rng(seed)
        predictions = np.zeros(n)
        floor = self.config.min_delay_floor
        prev_mean = float(self.feature_scaler.mean_[_PREV_DELAY_COL])
        prev_std = float(self.feature_scaler.std_[_PREV_DELAY_COL])
        t_mean = float(self.target_scaler.mean_[0])
        t_std = float(self.target_scaler.std_[0])
        rho = (
            self.config.sample_ar_rho
            if self.config.sample_ar_rho is not None
            else self.fitted_rho_
        )
        innovation_scale = math.sqrt(max(0.0, 1.0 - rho**2))
        noise_state = float(rng.normal()) if sample else 0.0

        lstm = self.model.lstm
        H = lstm.hidden_dim
        layers = []
        for cell in lstm.layers:
            w_x, w_h = cell.weight_views()
            layers.append(
                (
                    np.ascontiguousarray(w_x, dtype=np_dtype),
                    np.ascontiguousarray(w_h, dtype=np_dtype),
                    cell.b.value.astype(np_dtype),
                )
            )
        w_mu = np.ascontiguousarray(
            self.model.head_mu.W.value[:, 0], dtype=np_dtype
        )
        b_mu = float(self.model.head_mu.b.value[0])
        w_ls = np.ascontiguousarray(
            self.model.head_log_sigma.W.value[:, 0], dtype=np_dtype
        )
        b_ls = float(self.model.head_log_sigma.b.value[0])

        wx0, wh0, b0 = layers[0]
        w_prev = np.ascontiguousarray(wx0[_PREV_DELAY_COL])
        static = scaled
        static[:, _PREV_DELAY_COL] = 0.0
        base = static @ wx0 + b0  # (n, 4H): every step's input projection
        hs = [np.zeros(H, dtype=np_dtype) for _ in layers]
        cs = [np.zeros(H, dtype=np_dtype) for _ in layers]
        tanh = np.tanh
        half = np_dtype.type(0.5)
        prev_delay_real = 0.0
        for t in range(n):
            prev_scaled = (prev_delay_real - prev_mean) / prev_std
            out = None
            for k, (w_x, w_h, b) in enumerate(layers):
                if k == 0:
                    z = base[t] + prev_scaled * w_prev + hs[0] @ wh0
                else:
                    z = out @ w_x + b + hs[k] @ w_h
                # sigmoid(x) = (1 + tanh(x/2)) / 2: one vectorized tanh
                # covers the i/f/o gates (the branch-free identity is
                # ~3x cheaper per step than masked exp at these sizes).
                s = tanh(half * z)
                i = half * (1 + s[:H])
                f = half * (1 + s[H : 2 * H])
                o = half * (1 + s[3 * H :])
                g = tanh(z[2 * H : 3 * H])
                c = f * cs[k] + i * g
                h = o * tanh(c)
                hs[k] = h
                cs[k] = c
                out = h
            mu = float(out @ w_mu) + b_mu
            mean_delay = mu * t_std + t_mean
            if mean_delay < floor:
                mean_delay = floor
            if sample:
                sigma = math.exp(float(out @ w_ls) + b_ls)
                # AR(1) noise: marginally N(0, 1), temporally smooth.
                noise_state = (
                    rho * noise_state
                    + innovation_scale * float(rng.normal())
                )
                delay = (mu + sigma * noise_state) * t_std + t_mean
                if delay < floor:
                    delay = floor
            else:
                delay = mean_delay
            predictions[t] = delay
            # Feed the *mean* back: sampling noise in the feedback loop
            # would turn the unroll into a one-sided random walk.
            prev_delay_real = mean_delay
        return predictions

    def predict_trace(
        self,
        trace: Trace,
        ct: Optional[np.ndarray] = None,
        sample: bool = True,
        seed: int = 0,
    ) -> Trace:
        """Synthesize the predicted output trace for ``trace``'s input.

        With the loss head enabled (``config.predict_loss``), packets are
        additionally lost with the predicted probability — the paper's
        "packet loss (infinite delay)" encoding.
        """
        delays = self.predict_delays(trace, ct=ct, sample=sample, seed=seed)
        lost = np.zeros(len(trace), dtype=bool)
        if self.loss_model is not None and sample:
            probs = self.predict_loss_proba(trace, ct=ct)
            rng = np.random.default_rng(seed + 101)
            lost = rng.random(len(trace)) < probs
        records = [
            PacketRecord(
                uid=r.uid,
                seq=r.seq,
                size=r.size,
                sent_at=r.sent_at,
                delivered_at=(
                    math.nan if lost[k] else r.sent_at + delays[k]
                ),
                is_retransmit=r.is_retransmit,
            )
            for k, r in enumerate(trace.records)
        ]
        return Trace(
            f"iboxml-{trace.flow_id}",
            records,
            duration=trace.duration,
            protocol=trace.protocol,
            metadata={**trace.metadata, "model": "iboxml"},
        )

    def num_parameters(self) -> int:
        """Trainable parameter count (the paper quotes ~2 M for its GPU
        model; ours is deliberately smaller for CPU training)."""
        return self.model.num_parameters()

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def save(self, path) -> None:
        """Persist the trained model (weights + scalers + config) to NPZ."""
        if not self._fitted:
            raise RuntimeError("cannot save an unfitted model")
        import dataclasses
        import json

        payload = {
            f"param::{name}": value
            for name, value in self.model.state_dict().items()
        }
        if self.loss_model is not None:
            payload.update(
                {
                    f"loss_param::{name}": value
                    for name, value in self.loss_model.state_dict().items()
                }
            )
        payload["feature_mean"] = self.feature_scaler.mean_
        payload["feature_std"] = self.feature_scaler.std_
        payload["target_mean"] = self.target_scaler.mean_
        payload["target_std"] = self.target_scaler.std_
        payload["meta"] = np.array(
            json.dumps(
                {
                    "config": dataclasses.asdict(self.config),
                    "fitted_rho": self.fitted_rho_,
                    "loss_odds_correction": self._loss_odds_correction,
                    "has_loss_head": self.loss_model is not None,
                }
            )
        )
        np.savez_compressed(path, **payload)

    @classmethod
    def load(cls, path) -> "IBoxMLModel":
        """Restore a model saved with :meth:`save`."""
        import json

        with np.load(path, allow_pickle=False) as data:
            meta = json.loads(str(data["meta"]))
            config = IBoxMLConfig(**meta["config"])
            model = cls(config)
            state = {
                key[len("param::"):]: data[key]
                for key in data.files
                if key.startswith("param::")
            }
            model.model.load_state_dict(state)
            model.feature_scaler.mean_ = data["feature_mean"]
            model.feature_scaler.std_ = data["feature_std"]
            model.target_scaler.mean_ = data["target_mean"]
            model.target_scaler.std_ = data["target_std"]
            model.fitted_rho_ = meta["fitted_rho"]
            model._loss_odds_correction = meta["loss_odds_correction"]
            if meta["has_loss_head"]:
                model.loss_model = BernoulliSequenceModel(
                    input_dim=config.input_dim,
                    hidden_dim=max(8, config.hidden_dim // 2),
                    num_layers=1,
                    seed=config.seed + 3,
                )
                loss_state = {
                    key[len("loss_param::"):]: data[key]
                    for key in data.files
                    if key.startswith("loss_param::")
                }
                model.loss_model.load_state_dict(loss_state)
            model._fitted = True
        return model


def delay_distribution_error(
    predicted: np.ndarray, ground_truth: np.ndarray
) -> float:
    """Mean absolute difference between the two delay CDFs (seconds).

    A scalar fit metric used in tests; the paper's Table 1 metric
    (percentile deltas of per-call p95 delays) lives in
    :func:`repro.analysis.stats.percentile_error_table`.
    """
    if len(predicted) == 0 or len(ground_truth) == 0:
        return math.nan
    qs = np.linspace(1, 99, 99)
    return float(
        np.mean(
            np.abs(
                np.percentile(predicted, qs) - np.percentile(ground_truth, qs)
            )
        )
    )
