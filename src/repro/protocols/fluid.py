"""Per-interval fluid response models of the packet protocols.

Each model here is the flow-level twin of a packet sender in this
package: same constants, same qualitative control law, but advanced one
*interval* at a time over a whole vector of flows at once instead of one
ACK at a time for a single flow.  This is what lets ``repro.sweep``
advance thousands of scenarios in lockstep (cf. m4 and the flow-level
tail-latency estimators in PAPERS.md): window dynamics become per-
interval recursions on arrays, and the per-packet machinery (dupacks,
RTO timers, pacing events) is deliberately dropped — see DESIGN.md §11
for where that approximation is known to break.

Conventions shared by every model:

* state is a dict of 1-D arrays over the flows of that protocol group;
* :meth:`send_rate` maps (state, env) to an offered rate in bytes/s;
* :meth:`on_interval` advances the state by ``env.dt`` seconds given
  the interval's feedback (RTT, loss fraction, goodput);
* loss *events* are edge-triggered and at most one per RTT (the caller
  gates them), mirroring how fast retransmit collapses a whole loss
  burst into one multiplicative decrease.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict

import numpy as np

from repro.protocols.bbr import CWND_GAIN, PROBE_BW_GAINS, STARTUP_GAIN
from repro.protocols.cubic import (
    CUBIC_BETA,
    CUBIC_C,
    FAST_CONVERGENCE_FACTOR,
)
from repro.protocols.vegas import VEGAS_ALPHA, VEGAS_BETA, VEGAS_GAMMA
from repro.simulation.packet import DEFAULT_MTU_BYTES

#: Safety bound on fluid windows (packets): far above any realistic BDP
#: in these sweeps, but keeps a runaway recursion from overflowing.
CWND_CAP = 1e6


@dataclass
class FluidEnv:
    """One interval's network feedback for one protocol group.

    All arrays are gathered to the group's flows.  ``loss_event`` is the
    RTT-gated edge trigger; ``loss_frac`` is the raw per-interval drop
    fraction (used by loss-proportional controllers like RTC).
    """

    t: float
    dt: float
    mss: float
    rtt: np.ndarray
    base_rtt: np.ndarray
    srv: np.ndarray
    sent: np.ndarray = field(default=None)  # offered bytes/s this interval
    delivered: np.ndarray = field(default=None)  # accepted bytes/s
    loss_frac: np.ndarray = field(default=None)
    loss_event: np.ndarray = field(default=None)  # bool


class FluidModel:
    """Base class: window-driven unless ``send_rate`` is overridden."""

    name = "?"

    def init_state(self, n: int) -> Dict[str, np.ndarray]:
        raise NotImplementedError

    def send_rate(self, state: Dict[str, np.ndarray], env: FluidEnv) -> np.ndarray:
        # Fluid window model: a window w sustains w*MSS bytes per RTT.
        return state["cwnd"] * env.mss / env.rtt

    def on_interval(self, state: Dict[str, np.ndarray], env: FluidEnv) -> None:
        raise NotImplementedError


class RenoFluid(FluidModel):
    """AIMD: doubling per RTT below ssthresh, +1 segment per RTT above,
    halve on a loss event (reno.py)."""

    name = "reno"
    loss_backoff = 0.5

    def init_state(self, n: int) -> Dict[str, np.ndarray]:
        return {
            "cwnd": np.full(n, 10.0),
            "ssthresh": np.full(n, np.inf),
        }

    def on_interval(self, state, env) -> None:
        cwnd, ssthresh = state["cwnd"], state["ssthresh"]
        per_rtt = env.dt / env.rtt
        slow = cwnd < ssthresh
        # Slow start compounds (x2 per RTT); CA is additive.
        growth = np.where(
            slow, cwnd * (np.exp2(per_rtt) - 1.0), per_rtt
        )
        cwnd += growth
        hit = env.loss_event
        if np.any(hit):
            ssthresh[hit] = np.maximum(2.0, cwnd[hit] * self.loss_backoff)
            cwnd[hit] = np.maximum(2.0, cwnd[hit] * self.loss_backoff)
        np.clip(cwnd, 1.0, CWND_CAP, out=cwnd)


class CubicFluid(FluidModel):
    """RFC 8312 window curve W(t) = C(t-K)^3 + W_max with the
    TCP-friendly floor, anchored per loss epoch (cubic.py)."""

    name = "cubic"

    def init_state(self, n: int) -> Dict[str, np.ndarray]:
        return {
            "cwnd": np.full(n, 10.0),
            "ssthresh": np.full(n, np.inf),
            "w_max": np.zeros(n),
            "k": np.zeros(n),
            "epoch_t": np.full(n, np.nan),  # nan = no epoch yet
        }

    def on_interval(self, state, env) -> None:
        cwnd = state["cwnd"]
        in_epoch = np.isfinite(state["epoch_t"])
        slow = ~in_epoch & (cwnd < state["ssthresh"])
        per_rtt = env.dt / env.rtt
        cwnd[slow] += cwnd[slow] * (np.exp2(per_rtt[slow]) - 1.0)
        if np.any(in_epoch):
            state["epoch_t"][in_epoch] += env.dt
            t = state["epoch_t"][in_epoch]
            rtt = env.rtt[in_epoch]
            w_max = state["w_max"][in_epoch]
            target = (
                CUBIC_C * (t + rtt - state["k"][in_epoch]) ** 3 + w_max
            )
            # TCP-friendly region: Reno's rate from the epoch start.
            w_est = w_max * CUBIC_BETA + (
                3 * (1 - CUBIC_BETA) / (1 + CUBIC_BETA)
            ) * (t / rtt)
            cwnd[in_epoch] = np.maximum(
                np.maximum(target, w_est), 2.0
            )
        hit = env.loss_event
        if np.any(hit):
            old = cwnd[hit]
            w_max = np.where(
                old < state["w_max"][hit],
                old * FAST_CONVERGENCE_FACTOR,
                old,
            )
            new = np.maximum(2.0, old * CUBIC_BETA)
            state["w_max"][hit] = w_max
            state["ssthresh"][hit] = new
            cwnd[hit] = new
            state["epoch_t"][hit] = 0.0
            state["k"][hit] = np.cbrt(
                np.maximum(w_max - new, 0.0) / CUBIC_C
            )
        np.clip(cwnd, 1.0, CWND_CAP, out=cwnd)


class VegasFluid(FluidModel):
    """Delay-based: keep (expected - actual) * baseRTT between alpha and
    beta packets queued (vegas.py)."""

    name = "vegas"

    def init_state(self, n: int) -> Dict[str, np.ndarray]:
        return {
            "cwnd": np.full(n, 10.0),
            "slow": np.ones(n, dtype=bool),
        }

    def on_interval(self, state, env) -> None:
        cwnd, slow = state["cwnd"], state["slow"]
        per_rtt = env.dt / env.rtt
        # Packets the flow itself keeps queued at the bottleneck.
        diff = cwnd * (1.0 - env.base_rtt / env.rtt)
        exit_slow = slow & (diff > VEGAS_GAMMA)
        grow_slow = slow & ~exit_slow
        # Vegas slow start: +50% per RTT average slope (see vegas.py).
        cwnd[grow_slow] *= 1.5 ** per_rtt[grow_slow]
        cwnd[exit_slow] = np.maximum(2.0, cwnd[exit_slow] - 1.0)
        slow[exit_slow] = False
        ca = ~slow
        cwnd[ca & (diff < VEGAS_ALPHA)] += per_rtt[ca & (diff < VEGAS_ALPHA)]
        shrink = ca & (diff > VEGAS_BETA)
        cwnd[shrink] = np.maximum(2.0, cwnd[shrink] - per_rtt[shrink])
        hit = env.loss_event
        if np.any(hit):
            cwnd[hit] = np.maximum(2.0, cwnd[hit] * 0.75)
            slow[hit] = False
        np.clip(cwnd, 1.0, CWND_CAP, out=cwnd)


class BBRFluid(FluidModel):
    """Rate-based bandwidth prober: pace at gain * btl_bw, bound
    inflight by CWND_GAIN * BDP, cycle gains per RTT (bbr.py).

    The windowed-max bandwidth filter becomes a leaky max (decay over
    ~the 2 s window), which keeps the estimator O(1) per interval.
    """

    name = "bbr"
    bw_window = 2.0

    def init_state(self, n: int) -> Dict[str, np.ndarray]:
        return {
            "bw_est": np.full(n, DEFAULT_MTU_BYTES / 0.05),
            "in_startup": np.ones(n, dtype=bool),
            "full_bw": np.zeros(n),
            "full_cnt": np.zeros(n),
            "gain_idx": np.zeros(n, dtype=np.int64),
            "phase_start": np.zeros(n),
        }

    def send_rate(self, state, env) -> np.ndarray:
        gains = np.where(
            state["in_startup"],
            STARTUP_GAIN,
            np.asarray(PROBE_BW_GAINS)[state["gain_idx"]],
        )
        rate = gains * state["bw_est"]
        # Inflight bound: x * rtt <= CWND_GAIN * bw_est * rt_prop.
        bound = CWND_GAIN * state["bw_est"] * env.base_rtt / env.rtt
        return np.maximum(env.mss, np.minimum(rate, bound))

    def on_interval(self, state, env) -> None:
        decay = 1.0 - env.dt / self.bw_window
        state["bw_est"] = np.maximum(
            env.delivered, state["bw_est"] * decay
        )
        boundary = env.t - state["phase_start"] >= env.base_rtt
        if not np.any(boundary):
            return
        startup = boundary & state["in_startup"]
        grew = startup & (state["bw_est"] > state["full_bw"] * 1.25)
        state["full_bw"][grew] = state["bw_est"][grew]
        state["full_cnt"][grew] = 0
        stalled = startup & ~grew
        state["full_cnt"][stalled] += 1
        done = stalled & (state["full_cnt"] >= 3)
        state["in_startup"][done] = False
        state["gain_idx"][done] = 0
        cycling = boundary & ~state["in_startup"] & ~done
        state["gain_idx"][cycling] = (
            state["gain_idx"][cycling] + 1
        ) % len(PROBE_BW_GAINS)
        state["phase_start"][boundary] = env.t


class CBRFluid(FluidModel):
    """Open-loop constant-rate sender (cbr.py default rate)."""

    name = "cbr"
    rate_bytes_per_sec = 250_000.0

    def init_state(self, n: int) -> Dict[str, np.ndarray]:
        return {"rate": np.full(n, self.rate_bytes_per_sec)}

    def send_rate(self, state, env) -> np.ndarray:
        return state["rate"]

    def on_interval(self, state, env) -> None:
        pass


class RTCFluid(FluidModel):
    """GCC-flavoured delay-gradient controller: multiplicative backoff
    on rising delay or heavy loss, additive increase otherwise, every
    100 ms (rtc.py constants)."""

    name = "rtc"
    start_rate = 125_000.0
    min_rate = 12_500.0
    max_rate = 2_500_000.0
    update_interval = 0.1
    overuse_threshold = 0.01  # sec of delay growth per sec
    backoff = 0.85
    increase_per_interval = 3_000.0
    loss_tolerance = 0.05

    def init_state(self, n: int) -> Dict[str, np.ndarray]:
        return {
            "rate": np.full(n, self.start_rate),
            "last_update": np.zeros(n),
            "prev_delay": np.full(n, np.nan),
            "acc_sent": np.zeros(n),
            "acc_lost": np.zeros(n),
        }

    def send_rate(self, state, env) -> np.ndarray:
        return state["rate"]

    def on_interval(self, state, env) -> None:
        state["acc_sent"] += env.sent * env.dt
        state["acc_lost"] += env.sent * env.loss_frac * env.dt
        due = env.t - state["last_update"] >= self.update_interval
        if not np.any(due):
            return
        rate = state["rate"]
        sent = state["acc_sent"][due]
        lost = state["acc_lost"][due]
        loss_rate = np.where(sent > 0, lost / np.maximum(sent, 1e-9), 0.0)
        elapsed = env.t - state["last_update"][due]
        prev = state["prev_delay"][due]
        gradient = np.where(
            np.isfinite(prev), (env.rtt[due] - prev) / elapsed, 0.0
        )
        updated = np.where(
            loss_rate > self.loss_tolerance,
            rate[due] * (1.0 - 0.5 * loss_rate),
            np.where(
                gradient > self.overuse_threshold,
                rate[due] * self.backoff,
                rate[due] + self.increase_per_interval,
            ),
        )
        rate[due] = np.clip(updated, self.min_rate, self.max_rate)
        state["prev_delay"][due] = env.rtt[due]
        state["last_update"][due] = env.t
        state["acc_sent"][due] = 0.0
        state["acc_lost"][due] = 0.0


#: Factories, keyed like :data:`repro.protocols.PROTOCOLS`.  LEDBAT has
#: no fluid twin yet; sweeps over it fall back to the packet engine.
FLUID_MODELS: Dict[str, Callable[[], FluidModel]] = {
    "reno": RenoFluid,
    "cubic": CubicFluid,
    "vegas": VegasFluid,
    "bbr": BBRFluid,
    "cbr": CBRFluid,
    "rtc": RTCFluid,
}


def fluid_model_for(protocol: str) -> FluidModel:
    """Instantiate the fluid twin of ``protocol`` (KeyError if none)."""
    try:
        return FLUID_MODELS[protocol.lower()]()
    except KeyError:
        raise KeyError(
            f"no fluid model for protocol {protocol!r}; "
            f"available: {', '.join(FLUID_MODELS)}"
        ) from None
