"""TCP Reno / NewReno.

The textbook AIMD loop: slow start to ``ssthresh``, additive increase of
one segment per RTT in congestion avoidance, multiplicative decrease to
half the window on a fast-retransmit loss event.  NewReno partial-ACK
recovery lives in the shared base class.
"""

from __future__ import annotations

from typing import Optional

from repro.protocols.base import Sender


class RenoSender(Sender):
    """TCP Reno congestion control."""

    name = "reno"

    def on_ack_progress(
        self, newly_acked: int, rtt_sample: Optional[float]
    ) -> None:
        if self.cwnd < self.ssthresh:
            # Slow start: one segment per ACKed segment.
            self.cwnd += newly_acked
        else:
            # Congestion avoidance: ~one segment per RTT.
            self.cwnd += newly_acked / self.cwnd

    def on_loss_event(self) -> float:
        return max(2.0, self.cwnd / 2)

    def on_timeout(self) -> None:
        self.ssthresh = max(2.0, self.cwnd / 2)
        self.cwnd = 1.0
