"""TCP Vegas.

Vegas is the paper's "treatment" protocol B: its delay sensitivity makes it
behave very differently from Cubic, which is exactly what stresses a model
learnt from Cubic traces (§3.1).  Vegas compares the *expected* throughput
``cwnd / baseRTT`` with the *actual* throughput ``cwnd / RTT`` and keeps
the difference (in packets buffered at the bottleneck) between ``alpha``
and ``beta``:

    diff = (expected - actual) * baseRTT
    diff < alpha  -> cwnd += 1 per RTT
    diff > beta   -> cwnd -= 1 per RTT
    otherwise     -> hold

Adjustments are made once per RTT, gated on ACK arrivals.
"""

from __future__ import annotations

from typing import Optional

from repro.protocols.base import Sender

VEGAS_ALPHA = 2.0
VEGAS_BETA = 4.0
VEGAS_GAMMA = 1.0  # slow-start exit threshold (packets queued)


class VegasSender(Sender):
    """TCP Vegas congestion control."""

    name = "vegas"

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.base_rtt = float("inf")
        self._rtt_sum = 0.0
        self._rtt_count = 0
        self._next_adjust_at = 0.0
        self._slow_start = True

    def on_ack_progress(
        self, newly_acked: int, rtt_sample: Optional[float]
    ) -> None:
        if rtt_sample is not None:
            self.base_rtt = min(self.base_rtt, rtt_sample)
            self._rtt_sum += rtt_sample
            self._rtt_count += 1
        if self._rtt_count == 0 or self.base_rtt == float("inf"):
            return
        if self.sim.now < self._next_adjust_at:
            return
        mean_rtt = self._rtt_sum / self._rtt_count
        self._rtt_sum = 0.0
        self._rtt_count = 0
        self._next_adjust_at = self.sim.now + mean_rtt

        expected = self.cwnd / self.base_rtt
        actual = self.cwnd / mean_rtt
        diff = (expected - actual) * self.base_rtt

        if self._slow_start:
            if diff > VEGAS_GAMMA:
                self._slow_start = False
                self.cwnd = max(2.0, self.cwnd - 1)
            else:
                # Vegas slow start: double every other RTT; approximated as
                # +50% per RTT which has the same average slope.
                self.cwnd *= 1.5
            return

        if diff < VEGAS_ALPHA:
            self.cwnd += 1.0
        elif diff > VEGAS_BETA:
            self.cwnd = max(2.0, self.cwnd - 1.0)
        # else: within [alpha, beta] — hold.

    def on_loss_event(self) -> float:
        self._slow_start = False
        return max(2.0, self.cwnd * 0.75)

    def on_timeout(self) -> None:
        self._slow_start = False
        self.ssthresh = max(2.0, self.cwnd / 2)
        self.cwnd = 2.0
