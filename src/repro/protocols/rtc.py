"""Delay-sensitive RTC (real-time conferencing) control loop.

Models the kind of sender behind the paper's RTC dataset (§5.2 / Table 1)
and the control-loop-bias training traces (§4.2 / Fig. 7): a Google-
Congestion-Control-flavoured loop that estimates the one-way delay
*gradient* from receiver feedback and

* backs off multiplicatively when delay is rising (overuse),
* increases additively when delay is flat/falling (underuse), and
* additionally backs off in proportion to the observed loss rate when it
  exceeds a tolerance, as RTC stacks do.

The sender is unreliable and paced, with the rate clamped to
``[min_rate, max_rate]`` like a video encoder's bitrate ladder.
"""

from __future__ import annotations

from typing import Optional

from repro.protocols.base import PacedSender
from repro.simulation.engine import Simulator
from repro.simulation.packet import DEFAULT_MTU_BYTES, Packet


class RTCSender(PacedSender):
    """Delay-gradient adaptive-rate media sender."""

    name = "rtc"

    def __init__(
        self,
        sim: Simulator,
        flow_id: str,
        downstream,
        start_rate_bytes_per_sec: float = 125_000.0,
        min_rate_bytes_per_sec: float = 12_500.0,
        max_rate_bytes_per_sec: float = 2_500_000.0,
        recorder=None,
        packet_size: int = DEFAULT_MTU_BYTES,
        update_interval: float = 0.1,
        overuse_threshold_sec_per_sec: float = 0.01,
        backoff: float = 0.85,
        increase_bytes_per_interval: float = 3_000.0,
        loss_tolerance: float = 0.05,
    ):
        super().__init__(
            sim,
            flow_id,
            downstream,
            rate_bytes_per_sec=start_rate_bytes_per_sec,
            recorder=recorder,
            packet_size=packet_size,
            reliable=False,
        )
        self.min_rate = float(min_rate_bytes_per_sec)
        self.max_rate = float(max_rate_bytes_per_sec)
        self.update_interval = update_interval
        self.overuse_threshold = overuse_threshold_sec_per_sec
        self.backoff = backoff
        self.increase_per_interval = increase_bytes_per_interval
        self.loss_tolerance = loss_tolerance

        self._delay_samples: list[tuple[float, float]] = []
        self._last_update = 0.0
        self._losses_at_update = 0
        self._acks_at_update = 0
        self.rate_decisions: list[tuple[float, float]] = []

    def on_feedback(self, ack: Packet, rtt_sample: Optional[float]) -> None:
        if rtt_sample is not None:
            self._delay_samples.append((self.sim.now, rtt_sample))
        if self.sim.now - self._last_update >= self.update_interval:
            self._update_rate()
            self._last_update = self.sim.now

    def _delay_gradient(self) -> Optional[float]:
        """Least-squares slope of recent delay samples, in sec per sec."""
        samples = self._delay_samples
        if len(samples) < 4:
            return None
        t0 = samples[0][0]
        n = len(samples)
        sum_t = sum(t - t0 for t, _ in samples)
        sum_d = sum(d for _, d in samples)
        sum_tt = sum((t - t0) ** 2 for t, _ in samples)
        sum_td = sum((t - t0) * d for t, d in samples)
        denom = n * sum_tt - sum_t * sum_t
        if denom <= 0:
            return None
        return (n * sum_td - sum_t * sum_d) / denom

    def _interval_loss_rate(self) -> float:
        acks = self.acked_packets - self._acks_at_update
        losses = self.feedback_losses - self._losses_at_update
        self._acks_at_update = self.acked_packets
        self._losses_at_update = self.feedback_losses
        total = acks + losses
        if total == 0:
            return 0.0
        return losses / total

    def _update_rate(self) -> None:
        gradient = self._delay_gradient()
        loss_rate = self._interval_loss_rate()
        rate = self.rate_bytes_per_sec
        if loss_rate > self.loss_tolerance:
            rate *= 1 - 0.5 * loss_rate
        elif gradient is not None and gradient > self.overuse_threshold:
            rate *= self.backoff
        else:
            rate += self.increase_per_interval
        rate = min(self.max_rate, max(self.min_rate, rate))
        self.set_rate(rate)
        self.rate_decisions.append((self.sim.now, rate))
        self._delay_samples.clear()
