"""BBR-flavoured congestion control (simplified).

A model-based sender in the spirit of BBR v1: it maintains windowed
estimates of the bottleneck bandwidth (max delivery rate over the last
``bw_window`` seconds) and the propagation RTT (min RTT over the last
``rtt_window`` seconds), paces at ``pacing_gain * btl_bw`` while bounding
inflight by ``cwnd_gain * BDP``, and cycles its pacing gain through the
standard ProbeBW pattern [1.25, 0.75, 1, 1, 1, 1, 1, 1].

This is deliberately a simplification — no ProbeRTT state, no full
delivery-rate sampling — but it reproduces BBR's qualitative behaviour
(rate-based, queue-shy, periodic probing), which is all the dataset
generation needs.  Pantheon carried BBR alongside Cubic and Vegas, so the
synthetic dataset does too.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional, Tuple

from repro.protocols.base import Sender
from repro.simulation.engine import Event
from repro.simulation.packet import Packet

PROBE_BW_GAINS = (1.25, 0.75, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0)
STARTUP_GAIN = 2.885  # 2/ln(2)
CWND_GAIN = 2.0


class BBRSender(Sender):
    """Bandwidth/RTT-probing, pacing-based sender."""

    name = "bbr"

    def __init__(
        self,
        *args,
        bw_window: float = 2.0,
        rtt_window: float = 10.0,
        **kwargs,
    ):
        super().__init__(*args, **kwargs)
        self.bw_window = bw_window
        self.rtt_window = rtt_window
        self._bw_samples: Deque[Tuple[float, float]] = deque()
        self._rtt_samples: Deque[Tuple[float, float]] = deque()
        self._delivered_bytes = 0
        self._last_delivered = 0
        self._last_sample_at = 0.0
        self._in_startup = True
        self._gain_index = 0
        self._cycle_started = 0.0
        self._pacing_event: Optional[Event] = None
        self._full_bw = 0.0
        self._full_bw_count = 0

    # ------------------------------------------------------------------
    # Estimators
    # ------------------------------------------------------------------
    @property
    def btl_bw(self) -> float:
        """Current bottleneck-bandwidth estimate (bytes/s)."""
        if not self._bw_samples:
            return self.packet_size / 0.05  # arbitrary pre-estimate
        return max(bw for _, bw in self._bw_samples)

    @property
    def rt_prop(self) -> float:
        """Current propagation-RTT estimate (seconds)."""
        if not self._rtt_samples:
            return 0.1
        return min(rtt for _, rtt in self._rtt_samples)

    def _record_bw_sample(self) -> None:
        now = self.sim.now
        elapsed = now - self._last_sample_at
        if elapsed < max(0.01, self.rt_prop / 4):
            return
        delivered = self._delivered_bytes - self._last_delivered
        self._last_delivered = self._delivered_bytes
        self._last_sample_at = now
        if elapsed > 0 and delivered > 0:
            self._bw_samples.append((now, delivered / elapsed))
        while self._bw_samples and self._bw_samples[0][0] < now - self.bw_window:
            self._bw_samples.popleft()

    def _record_rtt_sample(self, rtt: float) -> None:
        now = self.sim.now
        self._rtt_samples.append((now, rtt))
        while (
            self._rtt_samples
            and self._rtt_samples[0][0] < now - self.rtt_window
        ):
            self._rtt_samples.popleft()

    # ------------------------------------------------------------------
    # Pacing-driven transmission
    # ------------------------------------------------------------------
    def start(self) -> None:
        self._active = True
        self._pace()

    def shutdown(self) -> None:
        super().shutdown()
        self.sim.cancel(self._pacing_event)
        self._pacing_event = None

    def _pacing_gain(self) -> float:
        if self._in_startup:
            return STARTUP_GAIN
        return PROBE_BW_GAINS[self._gain_index]

    def _advance_gain_cycle(self) -> None:
        if self._in_startup:
            return
        if self.sim.now - self._cycle_started >= self.rt_prop:
            self._gain_index = (self._gain_index + 1) % len(PROBE_BW_GAINS)
            self._cycle_started = self.sim.now

    def _pace(self) -> None:
        if not self._active:
            return
        self._advance_gain_cycle()
        rate = max(
            self.packet_size / 1.0, self._pacing_gain() * self.btl_bw
        )
        bdp_packets = max(
            4.0, CWND_GAIN * self.btl_bw * self.rt_prop / self.packet_size
        )
        if self.inflight < bdp_packets:
            self._send_new_packet()
        gap = self.packet_size / rate
        self._pacing_event = self.sim.schedule(gap, self._pace)

    def _try_send(self) -> None:
        # Transmission is pacing-driven, not ACK-clocked.
        pass

    # ------------------------------------------------------------------
    # Feedback
    # ------------------------------------------------------------------
    def on_ack(self, ack: Packet) -> None:
        super().on_ack(ack)
        self._record_bw_sample()
        if self.latest_rtt is not None:
            self._record_rtt_sample(self.latest_rtt)
        self._maybe_exit_startup()

    def on_ack_progress(
        self, newly_acked: int, rtt_sample: Optional[float]
    ) -> None:
        self._delivered_bytes += newly_acked * self.packet_size
        # cwnd is only a safety bound for BBR; keep it at CWND_GAIN * BDP.
        self.cwnd = max(
            4.0, CWND_GAIN * self.btl_bw * self.rt_prop / self.packet_size
        )

    def _maybe_exit_startup(self) -> None:
        if not self._in_startup:
            return
        bw = self.btl_bw
        if bw > self._full_bw * 1.25:
            self._full_bw = bw
            self._full_bw_count = 0
        else:
            self._full_bw_count += 1
            if self._full_bw_count >= 3:
                self._in_startup = False
                self._cycle_started = self.sim.now

    def on_loss_event(self) -> float:
        # BBR v1 largely ignores individual losses; keep the rate model.
        return max(4.0, self.cwnd * 0.9)

    def on_timeout(self) -> None:
        self.ssthresh = max(4.0, self.cwnd / 2)
        self.cwnd = 4.0
