"""LEDBAT (RFC 6817) — a delay-based scavenger transport.

Not evaluated in the paper, but a natural member of the protocol zoo: like
Vegas it is delay-sensitive, but it targets an absolute queueing-delay
budget (``TARGET``, classically 100 ms) instead of a packet count, and it
is designed to *yield* to any other traffic.  Useful for A/B experiments
where the treatment should be background-transfer-like, and as a further
out-of-training-distribution protocol for iBox counterfactuals.

Window update per ACK (RFC 6817 §2.4.2, simplified):

    queuing_delay = current_delay - base_delay
    off_target    = (TARGET - queuing_delay) / TARGET
    cwnd         += GAIN * off_target * acked / cwnd
"""

from __future__ import annotations

from typing import Optional

from repro.protocols.base import Sender

LEDBAT_TARGET = 0.1  # seconds of queueing delay
LEDBAT_GAIN = 1.0
MIN_CWND = 2.0


class LEDBATSender(Sender):
    """Low Extra Delay Background Transport."""

    name = "ledbat"

    def __init__(self, *args, target: float = LEDBAT_TARGET, **kwargs):
        super().__init__(*args, **kwargs)
        if target <= 0:
            raise ValueError("target must be positive")
        self.target = target
        self.base_delay = float("inf")

    def on_ack_progress(
        self, newly_acked: int, rtt_sample: Optional[float]
    ) -> None:
        if rtt_sample is None:
            return
        self.base_delay = min(self.base_delay, rtt_sample)
        queuing_delay = rtt_sample - self.base_delay
        off_target = (self.target - queuing_delay) / self.target
        # Gain-limited: never ramp faster than slow start (RFC 6817).
        delta = LEDBAT_GAIN * off_target * newly_acked / self.cwnd
        delta = min(delta, float(newly_acked))
        self.cwnd = max(MIN_CWND, self.cwnd + delta)

    def on_loss_event(self) -> float:
        # Loss still halves the window, like TCP.
        return max(MIN_CWND, self.cwnd / 2)

    def on_timeout(self) -> None:
        self.ssthresh = max(MIN_CWND, self.cwnd / 2)
        self.cwnd = MIN_CWND
