"""Congestion-control senders used to generate and replay traces.

The paper's A/B tests pit TCP Cubic (the "control", most prevalent flavour)
against TCP Vegas (the "treatment", delay-sensitive and hence challenging
for a model learnt from Cubic traces).  We implement both, plus Reno, a
BBR-flavoured rate-based sender, a CBR sender (used in the control-loop-bias
experiment of §4.2 / Fig. 7) and a delay-gradient RTC control loop (the
§5.2 / Table 1 workload).

All senders share the reliable window-based transport in
:mod:`repro.protocols.base` (sequence numbers, cumulative ACKs, duplicate-ACK
fast retransmit, RTO, RTT estimation) or its unreliable paced variant.
"""

from repro.protocols.base import (
    PacedSender,
    Receiver,
    Sender,
    TransmissionInfo,
)
from repro.protocols.cubic import CubicSender
from repro.protocols.vegas import VegasSender
from repro.protocols.reno import RenoSender
from repro.protocols.bbr import BBRSender
from repro.protocols.cbr import CBRSender
from repro.protocols.rtc import RTCSender
from repro.protocols.ledbat import LEDBATSender

PROTOCOLS = {
    "cubic": CubicSender,
    "vegas": VegasSender,
    "reno": RenoSender,
    "bbr": BBRSender,
    "cbr": CBRSender,
    "rtc": RTCSender,
    "ledbat": LEDBATSender,
}


def make_sender(name: str, *args, **kwargs):
    """Instantiate a sender by registry name (e.g. ``"cubic"``)."""
    try:
        cls = PROTOCOLS[name.lower()]
    except KeyError:
        raise ValueError(
            f"unknown protocol {name!r}; available: {sorted(PROTOCOLS)}"
        ) from None
    return cls(*args, **kwargs)


__all__ = [
    "BBRSender",
    "CBRSender",
    "CubicSender",
    "LEDBATSender",
    "PROTOCOLS",
    "PacedSender",
    "Receiver",
    "RenoSender",
    "RTCSender",
    "Sender",
    "TransmissionInfo",
    "VegasSender",
    "make_sender",
]
