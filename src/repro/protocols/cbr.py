"""Constant-bit-rate sender.

Used in the control-loop-bias experiment (§4.2 / Fig. 7): a "high-rate CBR
sender" whose transmissions do **not** react to network feedback, unlike
the control-loop traffic iBoxML was trained on.  That mismatch is what
exposes the bias.
"""

from __future__ import annotations

from repro.protocols.base import PacedSender
from repro.simulation.engine import Simulator
from repro.simulation.packet import DEFAULT_MTU_BYTES


class CBRSender(PacedSender):
    """Unreliable constant-rate sender (open loop)."""

    name = "cbr"

    def __init__(
        self,
        sim: Simulator,
        flow_id: str,
        downstream,
        rate_bytes_per_sec: float = 250_000.0,
        recorder=None,
        packet_size: int = DEFAULT_MTU_BYTES,
    ):
        super().__init__(
            sim,
            flow_id,
            downstream,
            rate_bytes_per_sec=rate_bytes_per_sec,
            recorder=recorder,
            packet_size=packet_size,
            reliable=False,
        )
