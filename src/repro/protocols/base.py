"""Window-based reliable transport shared by all TCP flavours.

Implements the machinery every congestion-control variant needs — sequence
numbers, cumulative ACKs with duplicate-ACK fast retransmit (NewReno-style
partial-ACK handling), an RFC 6298-style RTT estimator and retransmission
timer, and Karn's rule for RTT sampling — while delegating window dynamics
to subclasses through three hooks:

``on_ack_progress(newly_acked, rtt_sample)``
    Called for every ACK that advances the window; grows ``cwnd``.
``on_loss_event()``
    Called once per fast-retransmit loss event; applies the multiplicative
    decrease and returns the new ``ssthresh``.
``on_timeout()``
    Called on an RTO; conventionally collapses ``cwnd`` to one segment.

Rate-based senders (CBR, RTC, BBR) build on :class:`PacedSender`, which
replaces ACK clocking with a pacing timer.

The sender models an infinite-backlog (bulk) application; finite flows are
produced by scheduling :meth:`Sender.shutdown`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Set

from repro.simulation.engine import Event, Simulator
from repro.simulation.packet import ACK_SIZE_BYTES, DEFAULT_MTU_BYTES, Packet

# RFC 6298 constants.
RTO_ALPHA = 1 / 8
RTO_BETA = 1 / 4
RTO_K = 4
MIN_RTO = 0.2
MAX_RTO = 60.0
INITIAL_RTO = 1.0
INITIAL_CWND = 10.0
DUPACK_THRESHOLD = 3


@dataclass
class TransmissionInfo:
    """Bookkeeping for one outstanding sequence number."""

    seq: int
    uid: int
    sent_at: float
    size: int
    retransmitted: bool = False


class Receiver:
    """Flow endpoint: records deliveries and emits cumulative ACKs.

    The receiver keeps an out-of-order buffer of sequence numbers above the
    cumulative point; every arriving data packet (including duplicates)
    triggers an immediate ACK that echoes the data packet's send timestamp
    so the sender can take RTT samples without extra state.

    With ``cumulative=False`` the receiver behaves like a media (RTP-style)
    endpoint instead: the ACK number is one past the *highest* sequence seen,
    so feedback keeps flowing across unrepaired losses.

    ``delayed_ack=True`` enables RFC 1122-style delayed ACKs: in-order
    segments are acknowledged every second packet or after
    ``delayed_ack_timeout``, whichever comes first; out-of-order segments
    are always acknowledged immediately (they must generate dupacks for
    fast retransmit to work).
    """

    def __init__(
        self,
        sim: Simulator,
        flow_id: str,
        ack_path,
        recorder=None,
        cumulative: bool = True,
        delayed_ack: bool = False,
        delayed_ack_timeout: float = 0.04,
    ):
        self.sim = sim
        self.flow_id = flow_id
        self.ack_path = ack_path
        self.recorder = recorder
        self.cumulative = cumulative
        self.delayed_ack = delayed_ack
        self.delayed_ack_timeout = delayed_ack_timeout
        self.highest_seen = -1
        self.next_expected = 0
        self._out_of_order: Set[int] = set()
        self.packets_received = 0
        self.bytes_received = 0
        self.duplicates = 0
        self.acks_sent = 0
        self._held_acks = 0
        self._pending_echo: Optional[Packet] = None
        self._delack_timer = None

    def accept(self, packet: Packet) -> None:
        if packet.is_ack or packet.flow_id != self.flow_id:
            return
        packet.delivered_at = self.sim.now
        self.packets_received += 1
        self.bytes_received += packet.size
        if self.recorder is not None:
            self.recorder.record_delivery(packet)
        in_order = packet.seq == self.next_expected
        if in_order:
            self.next_expected += 1
            while self.next_expected in self._out_of_order:
                self._out_of_order.discard(self.next_expected)
                self.next_expected += 1
        elif packet.seq > self.next_expected:
            self._out_of_order.add(packet.seq)
        else:
            self.duplicates += 1
        self.highest_seen = max(self.highest_seen, packet.seq)

        if self.delayed_ack and in_order and not self._out_of_order:
            self._held_acks += 1
            self._pending_echo = packet
            if self._held_acks >= 2:
                self._flush_ack()
            elif self._delack_timer is None:
                self._delack_timer = self.sim.schedule(
                    self.delayed_ack_timeout, self._flush_ack
                )
        else:
            # Out-of-order (or delayed ACKs disabled): ACK immediately.
            self._pending_echo = packet
            self._flush_ack()

    def _flush_ack(self) -> None:
        if self._pending_echo is None:
            return
        self.sim.cancel(self._delack_timer)
        self._delack_timer = None
        self._held_acks = 0
        echo = self._pending_echo
        self._pending_echo = None
        ack_number = (
            self.next_expected if self.cumulative else self.highest_seen + 1
        )
        ack = Packet(
            flow_id=self.flow_id,
            seq=-1,
            size=ACK_SIZE_BYTES,
            is_ack=True,
            ack=ack_number,
            echo_seq=echo.seq,
            echo_uid=echo.uid,
            echo_sent_at=echo.sent_at,
        )
        ack.is_retransmit = echo.is_retransmit
        ack.sent_at = self.sim.now
        self.acks_sent += 1
        self.ack_path.accept(ack)


class Sender:
    """Base reliable window-based sender (ACK-clocked)."""

    name = "base"

    def __init__(
        self,
        sim: Simulator,
        flow_id: str,
        downstream,
        recorder=None,
        packet_size: int = DEFAULT_MTU_BYTES,
        initial_cwnd: float = INITIAL_CWND,
        max_cwnd: float = 10_000.0,
    ):
        self.sim = sim
        self.flow_id = flow_id
        self.downstream = downstream
        self.recorder = recorder
        self.packet_size = packet_size
        self.max_cwnd = max_cwnd

        # Congestion state (in packets).
        self.cwnd = float(initial_cwnd)
        self.ssthresh = float("inf")

        # Reliability state.
        self.next_seq = 0
        self.snd_una = 0  # lowest unacknowledged sequence number
        self._unacked: Dict[int, TransmissionInfo] = {}
        self._dupacks = 0
        self._in_recovery = False
        self._recover_seq = -1
        # SACK-lite: every ACK echoes the seq that triggered it, so the
        # sender knows which out-of-order segments have arrived and can
        # retransmit *all* holes during one recovery instead of one hole
        # per RTT — without this, a burst loss in a deep buffer stalls
        # cumulative-ACK recovery into an RTO (ancient NewReno behaviour
        # that modern SACK stacks, including Pantheon's, do not exhibit).
        self._sacked: Set[int] = set()
        self._retransmitted_in_recovery: Set[int] = set()

        # RTT / RTO state.
        self.srtt: Optional[float] = None
        self.rttvar: Optional[float] = None
        self.rto = INITIAL_RTO
        self.latest_rtt: Optional[float] = None
        self.min_rtt = float("inf")
        self._rto_event: Optional[Event] = None

        # Stats.
        self.packets_sent = 0
        self.retransmissions = 0
        self.timeouts = 0
        self.loss_events = 0
        self.acked_packets = 0
        self._active = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Begin transmitting."""
        self._active = True
        self._try_send()

    def shutdown(self) -> None:
        """Stop transmitting and cancel timers (used for finite CT flows)."""
        self._active = False
        self.sim.cancel(self._rto_event)
        self._rto_event = None

    @property
    def inflight(self) -> int:
        """Packets sent but not cumulatively acknowledged."""
        return len(self._unacked)

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------
    def _can_send(self) -> bool:
        return self._active and self.inflight < int(self.cwnd)

    def _try_send(self) -> None:
        while self._can_send():
            self._send_new_packet()

    def _send_new_packet(self) -> None:
        seq = self.next_seq
        self.next_seq += 1
        self._transmit(seq, retransmit=False)

    def _transmit(self, seq: int, retransmit: bool) -> None:
        if not self._active:
            # shutdown() stops everything, including loss repair.
            return
        packet = Packet(
            flow_id=self.flow_id,
            seq=seq,
            size=self.packet_size,
            is_retransmit=retransmit,
        )
        packet.sent_at = self.sim.now
        self._unacked[seq] = TransmissionInfo(
            seq=seq,
            uid=packet.uid,
            sent_at=self.sim.now,
            size=packet.size,
            retransmitted=retransmit,
        )
        self.packets_sent += 1
        if retransmit:
            self.retransmissions += 1
        if self.recorder is not None:
            self.recorder.record_send(packet)
        self.downstream.accept(packet)
        self._arm_rto()

    # ------------------------------------------------------------------
    # ACK processing
    # ------------------------------------------------------------------
    def accept(self, packet: Packet) -> None:
        """Entry point for the reverse (ACK) path."""
        if packet.is_ack and packet.flow_id == self.flow_id:
            self.on_ack(packet)

    def on_ack(self, ack: Packet) -> None:
        if not self._active and not self._unacked:
            return
        rtt_sample = self._take_rtt_sample(ack)
        if ack.echo_seq >= ack.ack:
            # The segment that triggered this ACK arrived above the
            # cumulative point: record it as selectively acknowledged.
            self._sacked.add(ack.echo_seq)
        if ack.ack > self.snd_una:
            self._on_new_ack(ack, rtt_sample)
        elif self._unacked:
            self._on_dupack(ack)
        self._try_send()

    def _take_rtt_sample(self, ack: Packet) -> Optional[float]:
        # Karn's rule: never sample RTT from a retransmitted segment.
        if ack.is_retransmit or ack.echo_sent_at < 0:
            return None
        sample = self.sim.now - ack.echo_sent_at
        self.latest_rtt = sample
        self.min_rtt = min(self.min_rtt, sample)
        if self.srtt is None:
            self.srtt = sample
            self.rttvar = sample / 2
        else:
            self.rttvar = (1 - RTO_BETA) * self.rttvar + RTO_BETA * abs(
                self.srtt - sample
            )
            self.srtt = (1 - RTO_ALPHA) * self.srtt + RTO_ALPHA * sample
        self.rto = min(
            MAX_RTO, max(MIN_RTO, self.srtt + RTO_K * self.rttvar)
        )
        return sample

    def _on_new_ack(self, ack: Packet, rtt_sample: Optional[float]) -> None:
        newly_acked = 0
        for seq in range(self.snd_una, ack.ack):
            if self._unacked.pop(seq, None) is not None:
                newly_acked += 1
        self.snd_una = ack.ack
        self.acked_packets += newly_acked
        self._dupacks = 0
        self._sacked = {s for s in self._sacked if s >= self.snd_una}

        if self._in_recovery:
            if ack.ack > self._recover_seq:
                self._in_recovery = False
                self._retransmitted_in_recovery.clear()
                self.cwnd = max(1.0, self.ssthresh)
            else:
                # Partial ACK: more holes remain; repair the next one.
                self._retransmit_holes(limit=1)
                self._arm_rto()
                return
        else:
            self.on_ack_progress(newly_acked, rtt_sample)
        self.cwnd = min(self.cwnd, self.max_cwnd)
        self._arm_rto()

    def _on_dupack(self, ack: Packet) -> None:
        self._dupacks += 1
        if self._in_recovery:
            # Window inflation during recovery keeps the pipe full, and
            # SACK information drives further hole repair.
            self.cwnd += 1.0
            self._retransmit_holes(limit=1)
            return
        if self._dupacks >= DUPACK_THRESHOLD:
            self.loss_events += 1
            self.ssthresh = self.on_loss_event()
            self.cwnd = max(1.0, self.ssthresh)
            self._in_recovery = True
            self._recover_seq = self.next_seq - 1
            self._retransmitted_in_recovery.clear()
            self._retransmit_holes(limit=1)

    def _retransmit_holes(self, limit: int = 1) -> None:
        """Retransmit up to ``limit`` lowest unrepaired holes below the
        highest SACKed sequence (falling back to the head segment)."""
        sent = 0
        high = max(self._sacked) if self._sacked else self.snd_una
        seq = self.snd_una
        while sent < limit and seq <= min(high, self._recover_seq):
            if (
                seq not in self._sacked
                and seq not in self._retransmitted_in_recovery
                and seq < self.next_seq
            ):
                self._unacked.pop(seq, None)
                self._retransmitted_in_recovery.add(seq)
                self._transmit(seq, retransmit=True)
                sent += 1
            seq += 1
        if sent < limit and self.snd_una not in self._retransmitted_in_recovery:
            # No SACK information: classic head retransmission.
            if self.snd_una < self.next_seq:
                self._unacked.pop(self.snd_una, None)
                self._retransmitted_in_recovery.add(self.snd_una)
                self._transmit(self.snd_una, retransmit=True)

    def _retransmit_head(self) -> None:
        if self.snd_una in self._unacked:
            del self._unacked[self.snd_una]
        if self.snd_una < self.next_seq:
            self._transmit(self.snd_una, retransmit=True)

    # ------------------------------------------------------------------
    # RTO handling
    # ------------------------------------------------------------------
    def _arm_rto(self) -> None:
        self.sim.cancel(self._rto_event)
        self._rto_event = None
        if self._unacked:
            self._rto_event = self.sim.schedule(self.rto, self._on_rto)

    def _on_rto(self) -> None:
        self._rto_event = None
        if not self._unacked:
            return
        self.timeouts += 1
        self.loss_events += 1
        self.on_timeout()
        self._in_recovery = False
        self._retransmitted_in_recovery.clear()
        self._dupacks = 0
        self.rto = min(MAX_RTO, self.rto * 2)
        self._retransmit_head()
        self._try_send()

    # ------------------------------------------------------------------
    # Protocol hooks
    # ------------------------------------------------------------------
    def on_ack_progress(
        self, newly_acked: int, rtt_sample: Optional[float]
    ) -> None:
        """Grow the window; default is Reno-style slow start + AI."""
        if self.cwnd < self.ssthresh:
            self.cwnd += newly_acked
        else:
            self.cwnd += newly_acked / self.cwnd

    def on_loss_event(self) -> float:
        """Multiplicative decrease; returns the new ssthresh."""
        return max(2.0, self.cwnd / 2)

    def on_timeout(self) -> None:
        """RTO response; default collapses to one segment."""
        self.ssthresh = max(2.0, self.cwnd / 2)
        self.cwnd = 1.0


class PacedSender(Sender):
    """Rate-based sender: emits packets on a pacing timer.

    Subclasses control ``rate_bytes_per_sec``; ACKs are still processed for
    delay/loss feedback (driving rate adaptation) but do not clock
    transmissions.  Reliability machinery is inherited but fast retransmit
    is disabled by default (media-style flows do not retransmit); set
    ``reliable=True`` to keep it.
    """

    name = "paced"

    def __init__(
        self,
        sim: Simulator,
        flow_id: str,
        downstream,
        rate_bytes_per_sec: float,
        recorder=None,
        packet_size: int = DEFAULT_MTU_BYTES,
        reliable: bool = False,
    ):
        super().__init__(
            sim, flow_id, downstream, recorder=recorder,
            packet_size=packet_size, initial_cwnd=float("inf"),
            max_cwnd=float("inf"),
        )
        if rate_bytes_per_sec <= 0:
            raise ValueError("rate must be positive")
        self.rate_bytes_per_sec = float(rate_bytes_per_sec)
        self.reliable = reliable
        self.feedback_losses = 0
        self._pacing_event: Optional[Event] = None

    def start(self) -> None:
        self._active = True
        self._pace()

    def shutdown(self) -> None:
        super().shutdown()
        self.sim.cancel(self._pacing_event)
        self._pacing_event = None

    def _pace(self) -> None:
        if not self._active:
            return
        self._send_new_packet()
        gap = self.packet_size / self.rate_bytes_per_sec
        self._pacing_event = self.sim.schedule(gap, self._pace)

    def _try_send(self) -> None:
        # Transmissions are driven purely by the pacing timer.
        pass

    def on_ack(self, ack: Packet) -> None:
        if self.reliable:
            super().on_ack(ack)
            return
        # Unreliable (media-style) feedback: the receiver ACKs the highest
        # sequence seen.  Each ACK echoes exactly one data packet; clear it
        # from the outstanding set, infer losses from the skipped gap, and
        # hand the sample to the rate controller.
        rtt_sample = self._take_rtt_sample(ack)
        self._unacked.pop(ack.echo_seq, None)
        self.snd_una = max(self.snd_una, ack.ack)
        # Packets the cumulative point has passed are late or lost; count
        # them lost once their reordering window has expired.
        horizon = self.sim.now - self.loss_delay()
        stale = [
            seq
            for seq, info in self._unacked.items()
            if seq < self.snd_una and info.sent_at < horizon
        ]
        for seq in stale:
            del self._unacked[seq]
            self.feedback_losses += 1
        self.acked_packets += 1
        self.on_feedback(ack, rtt_sample)

    def loss_delay(self) -> float:
        """How long a skipped packet may stay outstanding before it counts
        as lost (covers in-network reordering)."""
        base = self.srtt if self.srtt is not None else 0.1
        return max(0.05, base)

    def on_feedback(self, ack: Packet, rtt_sample: Optional[float]) -> None:
        """Hook: per-ACK rate-control feedback for unreliable flows."""

    def _arm_rto(self) -> None:
        if self.reliable:
            super()._arm_rto()
        # Unreliable flows have no retransmission timer.

    def set_rate(self, rate_bytes_per_sec: float) -> None:
        """Adjust the pacing rate (takes effect from the next packet)."""
        if rate_bytes_per_sec <= 0:
            raise ValueError("rate must be positive")
        self.rate_bytes_per_sec = float(rate_bytes_per_sec)
