"""TCP Cubic (RFC 8312 flavour).

Cubic is the paper's "control" protocol A: the most prevalent TCP flavour
in the Internet (§3.1).  Window growth follows the cubic function

    W(t) = C * (t - K)^3 + W_max,       K = cbrt(W_max * beta / C)

anchored at the window size ``W_max`` at the last loss event, with
``beta = 0.3`` multiplicative decrease (window falls to ``0.7 * W_max``)
and the standard TCP-friendly region so Cubic never does worse than Reno
at short RTTs.
"""

from __future__ import annotations

from typing import Optional

from repro.protocols.base import Sender

CUBIC_C = 0.4
CUBIC_BETA = 0.7  # window retained after a loss event
FAST_CONVERGENCE_FACTOR = (1 + CUBIC_BETA) / 2


class CubicSender(Sender):
    """TCP Cubic congestion control."""

    name = "cubic"

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.w_max = 0.0
        self._epoch_start: Optional[float] = None
        self._k = 0.0
        self._w_est = 0.0  # Reno-friendly window estimate
        self._acks_in_epoch = 0.0

    def _enter_epoch(self) -> None:
        self._epoch_start = self.sim.now
        if self.cwnd < self.w_max:
            self._k = ((self.w_max - self.cwnd) / CUBIC_C) ** (1 / 3)
        else:
            self._k = 0.0
            self.w_max = self.cwnd
        self._w_est = self.cwnd
        self._acks_in_epoch = 0.0

    def on_ack_progress(
        self, newly_acked: int, rtt_sample: Optional[float]
    ) -> None:
        if self.cwnd < self.ssthresh:
            self.cwnd += newly_acked
            return
        if self._epoch_start is None:
            self._enter_epoch()
        t = self.sim.now - self._epoch_start
        rtt = self.srtt if self.srtt is not None else 0.1
        target = CUBIC_C * (t + rtt - self._k) ** 3 + self.w_max
        # TCP-friendly region: emulate Reno's growth over this epoch.
        self._acks_in_epoch += newly_acked
        self._w_est += newly_acked * (
            3 * (1 - CUBIC_BETA) / (1 + CUBIC_BETA) / self.cwnd
        )
        target = max(target, self._w_est)
        if target > self.cwnd:
            # Spread the climb towards the target across the coming RTT.
            self.cwnd += (target - self.cwnd) / self.cwnd * newly_acked
        else:
            # Below target (concave plateau): probe very gently.
            self.cwnd += newly_acked * 0.01 / self.cwnd

    def on_loss_event(self) -> float:
        if self.cwnd < self.w_max:
            # Fast convergence: release bandwidth to newer flows faster.
            self.w_max = self.cwnd * FAST_CONVERGENCE_FACTOR
        else:
            self.w_max = self.cwnd
        self._epoch_start = None
        return max(2.0, self.cwnd * CUBIC_BETA)

    def on_timeout(self) -> None:
        self.w_max = self.cwnd
        self._epoch_start = None
        self.ssthresh = max(2.0, self.cwnd * CUBIC_BETA)
        self.cwnd = 1.0
