"""Bottleneck queues.

The paper's iBoxNet model assumes a single droptail FIFO with a byte-based
buffer (§3, "The implicit assumption of a byte-based buffer is a
simplification but nevertheless reasonable").  We implement exactly that,
plus a RED variant as an extension for ablations.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, List, Optional, Tuple

import numpy as np

from repro.simulation.packet import Packet


@dataclass
class QueueStats:
    """Counters accumulated by a queue over a run."""

    enqueued_packets: int = 0
    enqueued_bytes: int = 0
    dropped_packets: int = 0
    dropped_bytes: int = 0
    dequeued_packets: int = 0
    dequeued_bytes: int = 0
    peak_occupancy_bytes: int = 0
    # (time, occupancy_bytes) samples taken on every enqueue/dequeue.
    occupancy_samples: List[Tuple[float, int]] = field(default_factory=list)

    @property
    def drop_rate(self) -> float:
        """Fraction of offered packets that were dropped."""
        offered = self.enqueued_packets + self.dropped_packets
        if offered == 0:
            return 0.0
        return self.dropped_packets / offered


class DropTailQueue:
    """Byte-based droptail FIFO.

    A packet is dropped on arrival iff its size would push the buffered
    byte count above ``capacity_bytes``.
    """

    def __init__(self, capacity_bytes: float, record_occupancy: bool = False):
        if capacity_bytes <= 0:
            raise ValueError(
                f"queue capacity must be positive, got {capacity_bytes}"
            )
        self.capacity_bytes = float(capacity_bytes)
        self.record_occupancy = record_occupancy
        self._queue: Deque[Packet] = deque()
        self._bytes = 0
        self.stats = QueueStats()

    def __len__(self) -> int:
        return len(self._queue)

    @property
    def bytes_queued(self) -> int:
        """Bytes currently buffered."""
        return self._bytes

    @property
    def is_empty(self) -> bool:
        return not self._queue

    def admit(self, packet: Packet, now: float) -> bool:
        """Decide admission for ``packet``; override point for AQM variants."""
        return self._bytes + packet.size <= self.capacity_bytes

    def push(self, packet: Packet, now: float) -> bool:
        """Enqueue ``packet``; returns ``False`` (and marks it dropped) on a
        buffer overflow."""
        if not self.admit(packet, now):
            packet.dropped = True
            self.stats.dropped_packets += 1
            self.stats.dropped_bytes += packet.size
            return False
        packet.enqueued_at = now
        self._queue.append(packet)
        self._bytes += packet.size
        self.stats.enqueued_packets += 1
        self.stats.enqueued_bytes += packet.size
        if self._bytes > self.stats.peak_occupancy_bytes:
            self.stats.peak_occupancy_bytes = self._bytes
        if self.record_occupancy:
            self.stats.occupancy_samples.append((now, self._bytes))
        return True

    def pop(self, now: float) -> Optional[Packet]:
        """Dequeue the head-of-line packet, or ``None`` if empty."""
        if not self._queue:
            return None
        packet = self._queue.popleft()
        self._bytes -= packet.size
        self.stats.dequeued_packets += 1
        self.stats.dequeued_bytes += packet.size
        if self.record_occupancy:
            self.stats.occupancy_samples.append((now, self._bytes))
        return packet


class REDQueue(DropTailQueue):
    """Random Early Detection variant (extension; not used by iBoxNet).

    Uses the classic EWMA-of-occupancy drop probability ramp between
    ``min_thresh`` and ``max_thresh`` (expressed as fractions of capacity).
    """

    def __init__(
        self,
        capacity_bytes: float,
        min_thresh: float = 0.3,
        max_thresh: float = 0.9,
        max_drop_prob: float = 0.1,
        ewma_weight: float = 0.02,
        rng: Optional[np.random.Generator] = None,
        record_occupancy: bool = False,
    ):
        super().__init__(capacity_bytes, record_occupancy=record_occupancy)
        if not 0 <= min_thresh < max_thresh <= 1:
            raise ValueError(
                f"need 0 <= min_thresh < max_thresh <= 1, got "
                f"{min_thresh}, {max_thresh}"
            )
        self.min_thresh = min_thresh * capacity_bytes
        self.max_thresh = max_thresh * capacity_bytes
        self.max_drop_prob = max_drop_prob
        self.ewma_weight = ewma_weight
        self._avg = 0.0
        self._rng = rng if rng is not None else np.random.default_rng(0)

    def admit(self, packet: Packet, now: float) -> bool:
        self._avg = (
            (1 - self.ewma_weight) * self._avg + self.ewma_weight * self._bytes
        )
        if self._bytes + packet.size > self.capacity_bytes:
            return False
        if self._avg < self.min_thresh:
            return True
        if self._avg >= self.max_thresh:
            return False
        ramp = (self._avg - self.min_thresh) / (
            self.max_thresh - self.min_thresh
        )
        return self._rng.random() >= ramp * self.max_drop_prob
