"""Single-bottleneck path construction and flow runners.

This wires the pieces into the paper's Fig. 1 topology:

    sender S ──▶ [bottleneck queue+link (b, B)] ──▶ [prop delay d]
            (cross traffic C also enqueues here)      [reorder box]*
                                                            │
    sender ◀── [reverse prop delay] ◀── ACKs ◀── receiver ◀─┘

(* the reorder box exists only in ground-truth paths; iBoxNet's learnt
model cannot express it, which is the point of §5.1.)

Everything is declarative: a :class:`PathConfig` fully describes a path
(bandwidth process, delays, buffer, reordering, cross-traffic workload), and
:func:`run_flow` turns (config, protocol, duration, seed) into a
:class:`FlowRunResult` containing the end-to-end trace plus ground-truth
internals that the paper's authors could not observe on real paths — true
queue occupancy and true cross-traffic — which we use to validate the
estimators directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.simulation.crosstraffic import (
    OnOffSource,
    PoissonSource,
    RateReplaySource,
)
from repro.simulation.delaybox import DelayBox, ReorderBox, Sink
from repro.simulation.engine import Simulator
from repro.simulation.links import (
    Bottleneck,
    CellularRateProcess,
    ConstantRateProcess,
    RateProcess,
    TraceRateProcess,
)
from repro.simulation.packet import DEFAULT_MTU_BYTES, Packet
from repro.simulation.queues import DropTailQueue


# ----------------------------------------------------------------------
# Bandwidth specs (declarative; realised per-run)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ConstantBandwidth:
    """Fixed-rate bottleneck (wired path / iBoxNet emulator)."""

    rate_bytes_per_sec: float

    def build(self, duration: float, seed: int) -> RateProcess:
        return ConstantRateProcess(self.rate_bytes_per_sec)

    @property
    def nominal_rate(self) -> float:
        return self.rate_bytes_per_sec


@dataclass(frozen=True)
class CellularBandwidth:
    """Fluctuating cellular-like bottleneck (India Cellular flavour)."""

    mean_rate_bytes_per_sec: float
    volatility: float = 0.35
    reversion: float = 0.5
    fade_prob: float = 0.01

    def build(self, duration: float, seed: int) -> RateProcess:
        return CellularRateProcess(
            self.mean_rate_bytes_per_sec,
            duration=duration,
            seed=seed,
            volatility=self.volatility,
            reversion=self.reversion,
            fade_prob=self.fade_prob,
        )

    @property
    def nominal_rate(self) -> float:
        return self.mean_rate_bytes_per_sec


@dataclass(frozen=True)
class ScheduledBandwidth:
    """Explicit (times, rates) schedule — used when replaying a learnt
    variable-bandwidth profile."""

    times: Tuple[float, ...]
    rates: Tuple[float, ...]

    def build(self, duration: float, seed: int) -> RateProcess:
        return TraceRateProcess(self.times, self.rates)

    @property
    def nominal_rate(self) -> float:
        return float(np.mean(self.rates))


BandwidthSpec = Union[ConstantBandwidth, CellularBandwidth, ScheduledBandwidth]


# ----------------------------------------------------------------------
# Cross-traffic specs
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class PoissonCT:
    """Open-loop Poisson cross traffic."""

    rate_bytes_per_sec: float
    start: float = 0.0
    stop: Optional[float] = None


@dataclass(frozen=True)
class OnOffCT:
    """Bursty on/off cross traffic."""

    peak_rate_bytes_per_sec: float
    mean_on: float = 1.0
    mean_off: float = 2.0
    start: float = 0.0
    stop: Optional[float] = None


@dataclass(frozen=True)
class FlowCT:
    """Closed-loop cross traffic: a full congestion-controlled flow (the
    instance test's "one Cubic cross-traffic flow of 10 s duration")."""

    protocol: str = "cubic"
    start: float = 0.0
    stop: Optional[float] = None


@dataclass(frozen=True)
class ReplayCT:
    """Replay of an estimated cross-traffic rate series (iBoxNet emulator)."""

    bin_edges: Tuple[float, ...]
    rates_bytes_per_sec: Tuple[float, ...]


CrossTrafficSpec = Union[PoissonCT, OnOffCT, FlowCT, ReplayCT]


# ----------------------------------------------------------------------
# Path configuration
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class PathConfig:
    """Complete declarative description of a single-bottleneck path."""

    bandwidth: BandwidthSpec
    propagation_delay: float  # forward one-way, seconds
    buffer_bytes: float
    ack_delay: float = 0.0  # reverse-path delay; defaults to forward delay
    reorder_prob: float = 0.0
    reorder_extra_delay: float = 0.03
    cross_traffic: Tuple[CrossTrafficSpec, ...] = field(default_factory=tuple)

    def __post_init__(self):
        if self.propagation_delay < 0:
            raise ValueError("propagation_delay must be non-negative")
        if self.buffer_bytes <= 0:
            raise ValueError("buffer_bytes must be positive")

    @property
    def reverse_delay(self) -> float:
        return self.ack_delay if self.ack_delay > 0 else self.propagation_delay

    @property
    def min_rtt(self) -> float:
        return self.propagation_delay + self.reverse_delay


class FlowDemux:
    """Routes delivered packets to per-flow receivers; others to a sink."""

    def __init__(self, default_sink: Optional[Sink] = None):
        self._routes: Dict[str, object] = {}
        self.default = default_sink if default_sink is not None else Sink()

    def register(self, flow_id: str, component) -> None:
        self._routes[flow_id] = component

    def accept(self, packet: Packet) -> None:
        self._routes.get(packet.flow_id, self.default).accept(packet)


class SingleBottleneckPath:
    """A built (live) path: bottleneck + delay boxes + demux + ACK plumbing.

    Use :meth:`attach_flow` to connect a sender/receiver pair, then
    :meth:`add_cross_traffic` for workload, then run the simulator.
    """

    def __init__(
        self,
        sim: Simulator,
        config: PathConfig,
        duration: float,
        seed: int,
        record_queue: bool = False,
    ):
        self.sim = sim
        self.config = config
        self.duration = duration
        self.seed = seed
        self.rate_process = config.bandwidth.build(duration, seed)
        self.queue = DropTailQueue(
            config.buffer_bytes, record_occupancy=record_queue
        )
        self.demux = FlowDemux()
        rng = np.random.default_rng(seed ^ 0x5EED)
        terminal = self.demux
        if config.reorder_prob > 0:
            terminal = ReorderBox(
                sim,
                self.demux,
                reorder_prob=config.reorder_prob,
                detour_delay=config.reorder_extra_delay,
                rng=rng,
            )
        self.forward_delay = DelayBox(sim, config.propagation_delay, terminal)
        self.bottleneck = Bottleneck(
            sim, self.rate_process, self.queue, self.forward_delay
        )
        self._ct_sources: List[object] = []
        self._ct_seq = 0

    # ------------------------------------------------------------------
    # Flow attachment
    # ------------------------------------------------------------------
    def attach_flow(
        self,
        protocol: str,
        flow_id: str,
        recorder=None,
        cumulative: Optional[bool] = None,
        seed: int = 0,
        **sender_kwargs,
    ):
        """Create a (sender, receiver) pair of the given protocol on this
        path.  Returns the sender; call ``sender.start()`` (or schedule it)
        to begin."""
        from repro.protocols import PROTOCOLS, Receiver

        cls = PROTOCOLS[protocol.lower()]
        sender = cls(
            self.sim, flow_id, self.bottleneck, recorder=recorder,
            **sender_kwargs,
        )
        if cumulative is None:
            # Media-style senders need highest-seen feedback.
            cumulative = getattr(sender, "reliable", True)
        ack_path = DelayBox(self.sim, self.config.reverse_delay, sender)
        receiver = Receiver(
            self.sim, flow_id, ack_path, recorder=recorder,
            cumulative=cumulative,
        )
        self.demux.register(flow_id, receiver)
        return sender

    # ------------------------------------------------------------------
    # Cross traffic
    # ------------------------------------------------------------------
    def add_cross_traffic(self, spec: CrossTrafficSpec, seed: int) -> None:
        """Instantiate a cross-traffic source sharing the bottleneck."""
        flow_id = f"ct{self._ct_seq}"
        self._ct_seq += 1
        if isinstance(spec, PoissonCT):
            source = PoissonSource(
                self.sim,
                self.bottleneck,
                rate_bytes_per_sec=spec.rate_bytes_per_sec,
                seed=seed,
                flow_id=flow_id,
                start=spec.start,
                stop=spec.stop,
            )
        elif isinstance(spec, OnOffCT):
            source = OnOffSource(
                self.sim,
                self.bottleneck,
                peak_rate_bytes_per_sec=spec.peak_rate_bytes_per_sec,
                mean_on=spec.mean_on,
                mean_off=spec.mean_off,
                seed=seed,
                flow_id=flow_id,
                start=spec.start,
                stop=spec.stop,
            )
        elif isinstance(spec, FlowCT):
            sender = self.attach_flow(spec.protocol, flow_id)
            self.sim.schedule_at(max(spec.start, self.sim.now), sender.start)
            if spec.stop is not None:
                self.sim.schedule_at(spec.stop, sender.shutdown)
            source = sender
        elif isinstance(spec, ReplayCT):
            source = RateReplaySource(
                self.sim,
                self.bottleneck,
                bin_edges=spec.bin_edges,
                rates_bytes_per_sec=spec.rates_bytes_per_sec,
                flow_id=flow_id,
            )
        else:
            raise TypeError(f"unknown cross-traffic spec: {spec!r}")
        self._ct_sources.append(source)

    def cross_traffic_bytes_offered(self) -> int:
        """Total bytes offered by open-loop CT sources (ground truth)."""
        total = 0
        for source in self._ct_sources:
            sent = getattr(source, "packets_sent", None)
            size = getattr(source, "packet_size", DEFAULT_MTU_BYTES)
            if sent is not None:
                total += sent * size
        return total


@dataclass
class FlowRunResult:
    """Outcome of one simulated run of a flow over a path."""

    trace: "object"  # repro.trace.Trace (kept loose to avoid import cycle)
    config: PathConfig
    protocol: str
    seed: int
    queue_peak_bytes: int
    queue_drop_packets: int
    sender_stats: Dict[str, float]
    cross_traffic_bytes: int


def run_flow(
    config: PathConfig,
    protocol: str,
    duration: float,
    seed: int,
    flow_id: Optional[str] = None,
    ct_seed_offset: int = 1000,
    sender_kwargs: Optional[dict] = None,
    warmup: float = 0.0,
    path_seed: Optional[int] = None,
) -> FlowRunResult:
    """Run one flow of ``protocol`` over ``config`` for ``duration`` seconds.

    ``seed`` drives every random element (bandwidth realisation, CT
    arrivals, reordering), so runs are exactly reproducible.  ``warmup``
    delays the main flow's start without extending the recorded duration
    base (records are timestamped in absolute simulation time).

    ``path_seed``, when given, pins the *path* randomness (bandwidth
    realisation, reorder draws) separately from the workload randomness,
    so repeated runs over the identical path still see different
    cross-traffic arrivals.
    """
    from repro.trace import TraceRecorder

    sim = Simulator()
    path = SingleBottleneckPath(
        sim, config, duration, seed if path_seed is None else path_seed
    )
    if flow_id is None:
        flow_id = f"{protocol}-{seed}"
    recorder = TraceRecorder(flow_id, protocol=protocol)
    sender = path.attach_flow(
        protocol, flow_id, recorder=recorder, **(sender_kwargs or {})
    )
    for i, spec in enumerate(config.cross_traffic):
        path.add_cross_traffic(spec, seed=seed + ct_seed_offset + i)
    sim.schedule_at(warmup, sender.start)
    sim.run(until=duration)
    sender.shutdown()
    # Let in-flight packets drain so the tail of the trace is complete.
    sim.run(until=duration + 2.0)
    trace = recorder.finish(duration=duration)
    trace.metadata.update(
        {
            "protocol": protocol,
            "seed": seed,
            "nominal_rate": config.bandwidth.nominal_rate,
            "propagation_delay": config.propagation_delay,
            "buffer_bytes": config.buffer_bytes,
        }
    )
    return FlowRunResult(
        trace=trace,
        config=config,
        protocol=protocol,
        seed=seed,
        queue_peak_bytes=path.queue.stats.peak_occupancy_bytes,
        queue_drop_packets=path.queue.stats.dropped_packets,
        sender_stats={
            "packets_sent": sender.packets_sent,
            "retransmissions": sender.retransmissions,
            "timeouts": sender.timeouts,
            "loss_events": sender.loss_events,
        },
        cross_traffic_bytes=path.cross_traffic_bytes_offered(),
    )
