"""Packet representation shared by all simulator components."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Optional

DEFAULT_MTU_BYTES = 1500
ACK_SIZE_BYTES = 40

_packet_ids = itertools.count()


def reset_packet_ids() -> None:
    """Reset the global packet-id counter (used by tests for determinism)."""
    global _packet_ids
    _packet_ids = itertools.count()


@dataclass
class Packet:
    """A data or ACK packet.

    Each *transmission* gets a unique ``uid`` even when a sequence number is
    retransmitted, so input/output traces can pair deliveries with the
    transmission that produced them (delay = ``delivered_at - sent_at``).
    """

    flow_id: str
    seq: int
    size: int = DEFAULT_MTU_BYTES
    is_ack: bool = False
    # Cumulative ACK number (next in-order seq expected), for ACK packets.
    ack: int = -1
    # Sequence/uid of the data packet that triggered this ACK, echoed back
    # for RTT sampling without timestamps-in-payload bookkeeping.
    echo_seq: int = -1
    echo_uid: int = -1
    echo_sent_at: float = -1.0
    is_retransmit: bool = False
    uid: int = field(default_factory=lambda: next(_packet_ids))
    sent_at: float = -1.0
    enqueued_at: float = -1.0
    dequeued_at: float = -1.0
    delivered_at: float = -1.0
    dropped: bool = False

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ValueError(f"packet size must be positive, got {self.size}")

    @property
    def delay(self) -> Optional[float]:
        """One-way delay of this transmission, or ``None`` if never delivered."""
        if self.delivered_at < 0 or self.sent_at < 0:
            return None
        return self.delivered_at - self.sent_at

    def __repr__(self) -> str:
        kind = "ACK" if self.is_ack else "DATA"
        return (
            f"Packet({kind} flow={self.flow_id} seq={self.seq} uid={self.uid} "
            f"size={self.size})"
        )
