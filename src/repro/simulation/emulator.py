"""NetEm-like emulator driven by learnt parameters.

This is the right-hand side of the paper's Fig. 1: "iBoxNet learns network
parameters from data and sets them on the NetEm emulator".  An
:class:`EmulatorConfig` carries the learnt static parameters (b, d, B), the
estimated cross-traffic series C (replayed non-adaptively), and two ablation
switches used in Fig. 3:

* ``include_cross_traffic=False`` — drop the CT injector entirely (Fig. 3a);
* ``statistical_loss_rate=p`` — replace CT with i.i.d. packet loss at rate
  ``p``, the calibrated-emulator baseline of [45] (Fig. 3b).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro import obs
from repro.simulation.engine import Simulator
from repro.simulation.packet import Packet
from repro.simulation.topology import (
    ConstantBandwidth,
    FlowRunResult,
    PathConfig,
    ReplayCT,
    ScheduledBandwidth,
    SingleBottleneckPath,
)


class RandomLossBox:
    """Drops each packet independently with probability ``loss_rate``.

    Implements the statistical packet-loss model the paper compares against
    in Fig. 3(b) ("a simple statistical packet loss model, as in [45]").
    """

    def __init__(self, downstream, loss_rate: float, rng: np.random.Generator):
        if not 0 <= loss_rate < 1:
            raise ValueError(f"loss_rate must be in [0, 1), got {loss_rate}")
        self.downstream = downstream
        self.loss_rate = loss_rate
        self._rng = rng
        self.dropped = 0

    def accept(self, packet: Packet) -> None:
        if self.loss_rate > 0 and self._rng.random() < self.loss_rate:
            packet.dropped = True
            self.dropped += 1
            return
        self.downstream.accept(packet)


@dataclass(frozen=True)
class EmulatorConfig:
    """Learnt parameters ready to "set on the emulator"."""

    bandwidth_bytes_per_sec: float
    propagation_delay: float
    buffer_bytes: float
    # Cross-traffic estimate: bin edges (len n+1) and per-bin rates (len n).
    ct_bin_edges: Tuple[float, ...] = ()
    ct_rates_bytes_per_sec: Tuple[float, ...] = ()
    include_cross_traffic: bool = True
    statistical_loss_rate: float = 0.0
    # Optional learnt variable-bandwidth schedule (extension; overrides the
    # constant bandwidth when provided).
    bandwidth_schedule: Optional[Tuple[Tuple[float, ...], Tuple[float, ...]]] = None

    def to_path_config(self) -> PathConfig:
        """Translate into the declarative path description."""
        if self.bandwidth_schedule is not None:
            times, rates = self.bandwidth_schedule
            bandwidth = ScheduledBandwidth(tuple(times), tuple(rates))
        else:
            bandwidth = ConstantBandwidth(self.bandwidth_bytes_per_sec)
        cross_traffic = ()
        if (
            self.include_cross_traffic
            and len(self.ct_rates_bytes_per_sec) > 0
            and self.statistical_loss_rate == 0.0
        ):
            cross_traffic = (
                ReplayCT(
                    bin_edges=tuple(self.ct_bin_edges),
                    rates_bytes_per_sec=tuple(self.ct_rates_bytes_per_sec),
                ),
            )
        return PathConfig(
            bandwidth=bandwidth,
            propagation_delay=self.propagation_delay,
            buffer_bytes=self.buffer_bytes,
            cross_traffic=cross_traffic,
        )


class NetworkEmulator:
    """Runs treatment protocols over a learnt path model."""

    def __init__(self, config: EmulatorConfig):
        self.config = config

    def run(
        self,
        protocol: str,
        duration: float,
        seed: int,
        flow_id: Optional[str] = None,
        sender_kwargs: Optional[dict] = None,
    ) -> FlowRunResult:
        """Emulate one run of ``protocol`` over the learnt path."""
        import time

        with obs.span(
            "emulate.run", protocol=protocol, duration=duration, seed=seed
        ) as emulate_span:
            wall0 = time.perf_counter()
            result = self._run(
                protocol, duration, seed, flow_id, sender_kwargs
            )
            wall = time.perf_counter() - wall0
            packets = len(result.trace)
            emulate_span.set("packets", packets)
            if wall > 0 and packets:
                obs.metrics().histogram(
                    "emulate.packets_per_sec", obs.RATE_BUCKETS
                ).observe(packets / wall)
        return result

    def _run(
        self,
        protocol: str,
        duration: float,
        seed: int,
        flow_id: Optional[str] = None,
        sender_kwargs: Optional[dict] = None,
    ) -> FlowRunResult:
        from repro.trace import TraceRecorder

        path_config = self.config.to_path_config()
        sim = Simulator()
        path = SingleBottleneckPath(sim, path_config, duration, seed)
        if self.config.statistical_loss_rate > 0:
            # Splice the i.i.d. loss box in front of the bottleneck.
            loss_box = RandomLossBox(
                path.bottleneck,
                self.config.statistical_loss_rate,
                np.random.default_rng(seed ^ 0x10551055),
            )
            entry = loss_box
        else:
            entry = path.bottleneck
        if flow_id is None:
            flow_id = f"emu-{protocol}-{seed}"
        recorder = TraceRecorder(flow_id, protocol=protocol)
        sender = path.attach_flow(
            protocol, flow_id, recorder=recorder, **(sender_kwargs or {})
        )
        sender.downstream = entry
        for i, spec in enumerate(path_config.cross_traffic):
            path.add_cross_traffic(spec, seed=seed + 7000 + i)
        sim.schedule_at(0.0, sender.start)
        sim.run(until=duration)
        sender.shutdown()
        sim.run(until=duration + 2.0)
        trace = recorder.finish(duration=duration)
        trace.metadata.update(
            {
                "protocol": protocol,
                "seed": seed,
                "emulated": True,
                "statistical_loss_rate": self.config.statistical_loss_rate,
                "include_cross_traffic": self.config.include_cross_traffic,
            }
        )
        return FlowRunResult(
            trace=trace,
            config=path_config,
            protocol=protocol,
            seed=seed,
            queue_peak_bytes=path.queue.stats.peak_occupancy_bytes,
            queue_drop_packets=path.queue.stats.dropped_packets,
            sender_stats={
                "packets_sent": sender.packets_sent,
                "retransmissions": sender.retransmissions,
                "timeouts": sender.timeouts,
                "loss_events": sender.loss_events,
            },
            cross_traffic_bytes=path.cross_traffic_bytes_offered(),
        )
