"""Bottleneck links and bandwidth processes.

The bottleneck is the heart of both the ground-truth simulator and the
iBoxNet emulator: a FIFO queue drained by a (possibly time-varying) rate.
Variable-rate processes model cellular links (proportional-fair scheduling
makes the available rate fluctuate, §3.1); a token-bucket regulator models
traffic shaping (§3.2 cites [38]).
"""

from __future__ import annotations

from typing import Optional, Protocol, Sequence

import numpy as np

from repro.simulation.engine import Simulator
from repro.simulation.packet import Packet
from repro.simulation.queues import DropTailQueue


class RateProcess(Protocol):
    """A time-varying service rate, in bytes per second."""

    def rate_at(self, t: float) -> float:
        """Instantaneous service rate at simulated time ``t`` (bytes/s)."""
        ...


class ConstantRateProcess:
    """Fixed-rate link (the iBoxNet emulator's bottleneck)."""

    def __init__(self, rate_bytes_per_sec: float):
        if rate_bytes_per_sec <= 0:
            raise ValueError(
                f"rate must be positive, got {rate_bytes_per_sec}"
            )
        self._rate = float(rate_bytes_per_sec)

    def rate_at(self, t: float) -> float:
        return self._rate

    @property
    def mean_rate(self) -> float:
        return self._rate


class TraceRateProcess:
    """Step-function rate driven by an explicit ``(times, rates)`` schedule.

    ``times`` must be increasing and start at (or before) 0; the rate holds
    its last value beyond the final breakpoint.
    """

    def __init__(self, times: Sequence[float], rates: Sequence[float]):
        times_arr = np.asarray(times, dtype=float)
        rates_arr = np.asarray(rates, dtype=float)
        if times_arr.ndim != 1 or times_arr.shape != rates_arr.shape:
            raise ValueError("times and rates must be 1-D and equal length")
        if times_arr.size == 0:
            raise ValueError("schedule must be non-empty")
        if np.any(np.diff(times_arr) <= 0):
            raise ValueError("times must be strictly increasing")
        if np.any(rates_arr <= 0):
            raise ValueError("all rates must be positive")
        self._times = times_arr
        self._rates = rates_arr

    def rate_at(self, t: float) -> float:
        idx = int(np.searchsorted(self._times, t, side="right") - 1)
        idx = max(0, min(idx, len(self._rates) - 1))
        return float(self._rates[idx])

    @property
    def mean_rate(self) -> float:
        return float(np.mean(self._rates))


def cellular_rate_matrix(
    mean_rates_bytes_per_sec: Sequence[float],
    duration: float,
    seeds: Sequence[int],
    volatility: float = 0.35,
    reversion: float = 0.5,
    step: float = 0.1,
    fade_prob: float = 0.01,
    fade_depth: float = 0.15,
    floor_fraction: float = 0.05,
):
    """Realise many cellular rate processes at once.

    Returns ``(times, rates)`` where ``rates`` has shape
    ``(len(seeds), len(times))`` in bytes/s.  Row ``i`` draws exactly the
    same numbers as ``CellularRateProcess(mean[i], duration, seeds[i])``
    — one generator per seed, same draw order — so the batched sweep
    engine and the per-run packet engine see identical bandwidth for
    identical (mean, seed) pairs.  The OU recursion itself is advanced
    across all rows per time step, which is what makes packing a fleet
    of cellular scenarios cheap.
    """
    means = np.asarray(mean_rates_bytes_per_sec, dtype=float)
    seeds_arr = [int(s) for s in seeds]
    if means.ndim != 1 or means.size != len(seeds_arr):
        raise ValueError("need one mean rate per seed")
    if np.any(means <= 0):
        raise ValueError("mean rates must be positive")
    if duration <= 0:
        raise ValueError("duration must be positive")
    m = means.size
    n = max(2, int(np.ceil(duration / step)) + 1)
    times = np.arange(n) * step
    x0 = np.empty(m)
    noise = np.empty((m, n - 1))
    fades = np.empty((m, n), dtype=bool)
    for i, seed in enumerate(seeds_arr):
        rng = np.random.default_rng(seed)
        x0[i] = rng.normal(0.0, volatility / 2)
        noise[i] = rng.normal(0.0, 1.0, size=n - 1)
        fades[i] = rng.random(n) < fade_prob
    # OU in log space around log(mean): x_{k+1} = x_k + theta*(0-x_k)*dt
    #                                            + sigma*sqrt(dt)*N(0,1)
    x = np.empty((m, n))
    x[:, 0] = x0
    sqrt_dt = np.sqrt(step)
    for k in range(n - 1):
        x[:, k + 1] = (
            x[:, k]
            + reversion * (0.0 - x[:, k]) * step
            + volatility * sqrt_dt * noise[:, k]
        )
    rates = means[:, None] * np.exp(x)
    # Occasional deep fades (handover / scheduling stalls).
    rates[fades] *= fade_depth
    floors = floor_fraction * means
    rates = np.maximum(rates, floors[:, None])
    return times, rates


class CellularRateProcess(TraceRateProcess):
    """Cellular-like fluctuating bandwidth.

    Models the rate a proportional-fair scheduler hands a single user: a
    mean-reverting (Ornstein–Uhlenbeck-style, in log space) process sampled
    on a fixed grid, with occasional deep fades.  The realisation is drawn
    once at construction from ``seed`` so that ``rate_at`` is a pure lookup
    and repeated runs over the same path see identical bandwidth.
    """

    def __init__(
        self,
        mean_rate_bytes_per_sec: float,
        duration: float,
        seed: int,
        volatility: float = 0.35,
        reversion: float = 0.5,
        step: float = 0.1,
        fade_prob: float = 0.01,
        fade_depth: float = 0.15,
        floor_fraction: float = 0.05,
    ):
        if mean_rate_bytes_per_sec <= 0:
            raise ValueError("mean rate must be positive")
        times, rates = cellular_rate_matrix(
            [mean_rate_bytes_per_sec],
            duration=duration,
            seeds=[seed],
            volatility=volatility,
            reversion=reversion,
            step=step,
            fade_prob=fade_prob,
            fade_depth=fade_depth,
            floor_fraction=floor_fraction,
        )
        super().__init__(times, rates[0])
        self.configured_mean_rate = float(mean_rate_bytes_per_sec)


class MarkovRateProcess(TraceRateProcess):
    """Discrete-state bandwidth (e.g. WiFi MCS shifts).

    ``states`` are rates in bytes/s; the chain holds each state for an
    exponentially distributed time with mean ``mean_holding`` and then jumps
    uniformly to a different state.
    """

    def __init__(
        self,
        states: Sequence[float],
        duration: float,
        seed: int,
        mean_holding: float = 1.0,
    ):
        states_arr = [float(s) for s in states]
        if len(states_arr) < 2:
            raise ValueError("need at least two states")
        rng = np.random.default_rng(seed)
        times = [0.0]
        rates = [states_arr[rng.integers(len(states_arr))]]
        t = 0.0
        while t < duration:
            t += float(rng.exponential(mean_holding))
            current = rates[-1]
            choices = [s for s in states_arr if s != current]
            rates.append(choices[rng.integers(len(choices))])
            times.append(t)
        super().__init__(times, rates)


class Bottleneck:
    """A FIFO queue drained by a rate process.

    Components downstream receive packets via ``accept(packet)``.  The
    service time of a packet uses the rate at service start — accurate for
    rate processes that vary on coarser timescales than one transmission
    time, which holds for all processes above (100 ms grid vs sub-ms
    serialisation).
    """

    def __init__(
        self,
        sim: Simulator,
        rate_process: RateProcess,
        queue: DropTailQueue,
        downstream,
        name: str = "bottleneck",
    ):
        self.sim = sim
        self.rate_process = rate_process
        self.queue = queue
        self.downstream = downstream
        self.name = name
        self._busy = False
        self.busy_time = 0.0
        self._service_started_at = 0.0

    def accept(self, packet: Packet) -> None:
        """Offer a packet to the bottleneck queue."""
        if self.queue.push(packet, self.sim.now) and not self._busy:
            self._start_service()

    def _start_service(self) -> None:
        packet = self.queue.pop(self.sim.now)
        if packet is None:
            self._busy = False
            return
        self._busy = True
        self._service_started_at = self.sim.now
        rate = self.rate_process.rate_at(self.sim.now)
        service_time = packet.size / rate
        self.sim.schedule(service_time, self._complete_service, packet)

    def _complete_service(self, packet: Packet) -> None:
        packet.dequeued_at = self.sim.now
        self.busy_time += self.sim.now - self._service_started_at
        self._busy = False
        self.downstream.accept(packet)
        if not self.queue.is_empty:
            self._start_service()

    @property
    def is_busy(self) -> bool:
        return self._busy


class TokenBucket:
    """Token-bucket regulator (extension: §3.2 variable-bandwidth example).

    Tokens accrue at ``rate`` bytes/s up to ``burst`` bytes.  A packet is
    forwarded once the bucket holds at least its size in tokens; arrivals
    that cannot be served immediately wait in an unbounded FIFO (shaping,
    not policing).
    """

    def __init__(self, sim: Simulator, rate: float, burst: float, downstream):
        if rate <= 0 or burst <= 0:
            raise ValueError("rate and burst must be positive")
        self.sim = sim
        self.rate = float(rate)
        self.burst = float(burst)
        self.downstream = downstream
        self._tokens = float(burst)
        self._last_refill = 0.0
        self._waiting: list[Packet] = []
        self._release_scheduled = False

    def _refill(self) -> None:
        now = self.sim.now
        self._tokens = min(
            self.burst, self._tokens + (now - self._last_refill) * self.rate
        )
        self._last_refill = now

    def accept(self, packet: Packet) -> None:
        self._refill()
        self._waiting.append(packet)
        self._drain()

    def _drain(self) -> None:
        self._refill()
        while self._waiting and self._tokens >= self._waiting[0].size:
            packet = self._waiting.pop(0)
            self._tokens -= packet.size
            self.downstream.accept(packet)
        if self._waiting and not self._release_scheduled:
            deficit = self._waiting[0].size - self._tokens
            delay = deficit / self.rate
            self._release_scheduled = True
            self.sim.schedule(delay, self._release)

    def _release(self) -> None:
        self._release_scheduled = False
        self._drain()
