"""Discrete-event simulation kernel.

A minimal but complete event-driven engine: a binary-heap calendar of
timestamped callbacks, a simulated clock, event cancellation, and
deterministic tie-breaking (events scheduled at the same instant fire in
scheduling order), which keeps runs reproducible for a fixed seed.
"""

from __future__ import annotations

import heapq
import itertools
import time
from typing import Any, Callable, List, Optional

from repro import obs


class Event:
    """A scheduled callback.

    Events are created via :meth:`Simulator.schedule` and may be cancelled
    with :meth:`Simulator.cancel` (or :meth:`Event.cancel`).  A cancelled
    event stays in the heap but is skipped when popped; the owning
    simulator keeps a count of cancelled-but-still-heaped events so
    :attr:`Simulator.pending_events` never has to scan the calendar.  The
    back-reference is dropped when the event is popped, so cancelling an
    already-fired event (a stale timer handle, say) cannot skew the count.
    """

    __slots__ = ("time", "seq", "callback", "args", "cancelled", "_sim")

    def __init__(
        self,
        time: float,
        seq: int,
        callback: Callable[..., None],
        args: tuple,
        sim: Optional["Simulator"] = None,
    ) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False
        self._sim = sim

    def cancel(self) -> None:
        """Mark the event so it will not fire (idempotent)."""
        if self.cancelled:
            return
        self.cancelled = True
        sim = self._sim
        if sim is not None:
            sim._cancelled_pending += 1

    def __lt__(self, other: "Event") -> bool:
        if self.time != other.time:
            return self.time < other.time
        return self.seq < other.seq

    def __repr__(self) -> str:
        name = getattr(self.callback, "__qualname__", repr(self.callback))
        state = " cancelled" if self.cancelled else ""
        return f"Event(t={self.time:.6f}, {name}{state})"


class Simulator:
    """Event calendar plus simulated clock.

    Example::

        sim = Simulator()
        sim.schedule(1.0, print, "hello at t=1")
        sim.run(until=10.0)
    """

    def __init__(self) -> None:
        self.now: float = 0.0
        self._heap: List[Event] = []
        self._counter = itertools.count()
        self._events_processed = 0
        self._cancelled_pending = 0
        self._running = False
        self._stopped = False

    # ------------------------------------------------------------------
    # Scheduling API
    # ------------------------------------------------------------------
    def schedule(
        self, delay: float, callback: Callable[..., None], *args: Any
    ) -> Event:
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now.

        ``delay`` must be non-negative; a zero delay fires after all events
        already scheduled for the current instant.
        """
        if delay < 0:
            raise ValueError(f"cannot schedule in the past (delay={delay})")
        return self.schedule_at(self.now + delay, callback, *args)

    def schedule_at(
        self, time: float, callback: Callable[..., None], *args: Any
    ) -> Event:
        """Schedule ``callback(*args)`` at absolute simulated ``time``."""
        if time < self.now:
            raise ValueError(
                f"cannot schedule at t={time} before now={self.now}"
            )
        event = Event(time, next(self._counter), callback, args, sim=self)
        heapq.heappush(self._heap, event)
        return event

    @staticmethod
    def cancel(event: Optional[Event]) -> None:
        """Cancel a previously scheduled event (``None`` is a no-op)."""
        if event is not None:
            event.cancel()

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, until: float) -> None:
        """Process events in timestamp order until the clock reaches ``until``.

        The clock is left at ``until`` even if the calendar drains early, so
        measurements normalised by duration stay consistent.
        """
        if self._running:
            raise RuntimeError("simulator is already running")
        self._running = True
        self._stopped = False
        # Hot loop: heap, pop, and the processed counter live in locals
        # (the counter folds back into the instance in ``finally`` so a
        # raising callback still leaves the tally correct).
        heap = self._heap
        pop = heapq.heappop
        processed = 0
        wall0 = time.perf_counter()
        try:
            with obs.span("sim.run", until=until) as run_span:
                while heap and not self._stopped:
                    event = heap[0]
                    if event.time > until:
                        break
                    pop(heap)
                    event._sim = None
                    if event.cancelled:
                        self._cancelled_pending -= 1
                        continue
                    self.now = event.time
                    event.callback(*event.args)
                    processed += 1
                run_span.set("events", processed)
                wall = time.perf_counter() - wall0
                if wall > 0 and processed:
                    obs.metrics().histogram(
                        "sim.events_per_sec", obs.RATE_BUCKETS
                    ).observe(processed / wall)
            if not self._stopped:
                self.now = max(self.now, until)
        finally:
            self._events_processed += processed
            self._running = False

    def step(self) -> bool:
        """Process a single event.  Returns ``False`` if the calendar is empty."""
        heap = self._heap
        while heap:
            event = heapq.heappop(heap)
            event._sim = None
            if event.cancelled:
                self._cancelled_pending -= 1
                continue
            self.now = event.time
            event.callback(*event.args)
            self._events_processed += 1
            return True
        return False

    def stop(self) -> None:
        """Stop a :meth:`run` in progress after the current event returns."""
        self._stopped = True

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def pending_events(self) -> int:
        """Number of not-yet-fired, not-cancelled events (O(1))."""
        return len(self._heap) - self._cancelled_pending

    @property
    def events_processed(self) -> int:
        """Total events executed so far."""
        return self._events_processed

    def __repr__(self) -> str:
        return (
            f"Simulator(now={self.now:.6f}, pending={self.pending_events}, "
            f"processed={self._events_processed})"
        )
