"""An ns-like packet-level discrete-event network simulator.

This subpackage is the substrate the paper evaluates on: since the Pantheon
testbed traces are not available offline, we generate ground-truth traces by
running real congestion-control implementations over simulated paths with
queueing, loss, variable (cellular-like) bandwidth, reordering and
cross-traffic.  The same engine, configured from learnt iBoxNet parameters,
doubles as the NetEm-like emulator of Fig. 1 in the paper.

Component model
---------------
Packets flow through a pipeline of components, each implementing
``accept(packet)`` and forwarding to a ``downstream`` component:

    Sender -> Bottleneck(queue + link) -> DelayBox [-> ReorderBox] -> Receiver
                      ^                                                   |
                      +-- cross-traffic sources          ACKs <- DelayBox +

All times are in **seconds**, sizes in **bytes** and rates in **bytes per
second** internally; :mod:`repro.simulation.units` provides converters.
"""

from repro.simulation import units
from repro.simulation.engine import Event, Simulator
from repro.simulation.packet import Packet, ACK_SIZE_BYTES, DEFAULT_MTU_BYTES
from repro.simulation.queues import DropTailQueue, QueueStats, REDQueue
from repro.simulation.links import (
    Bottleneck,
    CellularRateProcess,
    ConstantRateProcess,
    MarkovRateProcess,
    RateProcess,
    TokenBucket,
    TraceRateProcess,
)
from repro.simulation.delaybox import DelayBox, JitterBox, ReorderBox, Sink
from repro.simulation.crosstraffic import (
    OnOffSource,
    PoissonSource,
    RateReplaySource,
    WindowedFlowSource,
)
from repro.simulation.topology import PathConfig, SingleBottleneckPath, run_flow
from repro.simulation.emulator import EmulatorConfig, NetworkEmulator

__all__ = [
    "ACK_SIZE_BYTES",
    "Bottleneck",
    "CellularRateProcess",
    "ConstantRateProcess",
    "DEFAULT_MTU_BYTES",
    "DelayBox",
    "DropTailQueue",
    "EmulatorConfig",
    "Event",
    "JitterBox",
    "MarkovRateProcess",
    "NetworkEmulator",
    "OnOffSource",
    "Packet",
    "PathConfig",
    "PoissonSource",
    "QueueStats",
    "REDQueue",
    "RateProcess",
    "RateReplaySource",
    "ReorderBox",
    "Simulator",
    "SingleBottleneckPath",
    "Sink",
    "TokenBucket",
    "TraceRateProcess",
    "WindowedFlowSource",
    "run_flow",
    "units",
]
