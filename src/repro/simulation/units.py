"""Unit conversion helpers.

The simulator works in seconds / bytes / bytes-per-second.  Configuration
and reporting, following the paper, use milliseconds and megabits per
second; these helpers keep the conversions explicit and typo-free.
"""

BITS_PER_BYTE = 8
MEGA = 1_000_000
KILO = 1_000


def mbps_to_bytes_per_sec(mbps: float) -> float:
    """Convert megabits per second to bytes per second."""
    return mbps * MEGA / BITS_PER_BYTE


def bytes_per_sec_to_mbps(bps: float) -> float:
    """Convert bytes per second to megabits per second."""
    return bps * BITS_PER_BYTE / MEGA


def kbps_to_bytes_per_sec(kbps: float) -> float:
    """Convert kilobits per second to bytes per second."""
    return kbps * KILO / BITS_PER_BYTE


def bytes_per_sec_to_kbps(bps: float) -> float:
    """Convert bytes per second to kilobits per second."""
    return bps * BITS_PER_BYTE / KILO


def ms_to_sec(ms: float) -> float:
    """Convert milliseconds to seconds."""
    return ms / KILO


def sec_to_ms(sec: float) -> float:
    """Convert seconds to milliseconds."""
    return sec * KILO


def bdp_bytes(rate_bytes_per_sec: float, rtt_sec: float) -> float:
    """Bandwidth-delay product in bytes."""
    return rate_bytes_per_sec * rtt_sec
