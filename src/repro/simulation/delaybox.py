"""Propagation delay, jitter and reordering components.

iBoxNet's single-bottleneck model cannot produce reordering (§3.2); the
ground-truth simulator therefore includes a multipath-style
:class:`ReorderBox` so that Pantheon-like traces exhibit the behaviour the
paper's §5.1 behaviour-discovery pipeline must find and the augmentation
models must recreate.
"""

from __future__ import annotations

from typing import Callable, List, Optional

import numpy as np

from repro.simulation.engine import Simulator
from repro.simulation.packet import Packet


class DelayBox:
    """Fixed propagation delay."""

    def __init__(self, sim: Simulator, delay: float, downstream):
        if delay < 0:
            raise ValueError(f"delay must be non-negative, got {delay}")
        self.sim = sim
        self.delay = float(delay)
        self.downstream = downstream

    def accept(self, packet: Packet) -> None:
        self.sim.schedule(self.delay, self.downstream.accept, packet)


class JitterBox:
    """Adds independent random extra delay to every packet.

    With enough jitter relative to inter-packet spacing this reorders
    packets; use :class:`ReorderBox` for controllable multipath-style
    reordering instead.
    """

    def __init__(
        self,
        sim: Simulator,
        downstream,
        jitter_std: float,
        rng: Optional[np.random.Generator] = None,
    ):
        if jitter_std < 0:
            raise ValueError("jitter_std must be non-negative")
        self.sim = sim
        self.downstream = downstream
        self.jitter_std = float(jitter_std)
        self._rng = rng if rng is not None else np.random.default_rng(0)

    def accept(self, packet: Packet) -> None:
        extra = abs(float(self._rng.normal(0.0, self.jitter_std)))
        self.sim.schedule(extra, self.downstream.accept, packet)


class ReorderBox:
    """Multipath-style reordering.

    With probability ``reorder_prob`` a packet takes a *detour* path with
    ``detour_delay`` extra latency; the rest pass through immediately.
    Packets behind a detoured packet overtake it, producing the negative
    inter-packet arrival deltas (SAX symbol 'a' in Fig. 8) that iBoxNet
    alone cannot generate.
    """

    def __init__(
        self,
        sim: Simulator,
        downstream,
        reorder_prob: float,
        detour_delay: float,
        rng: Optional[np.random.Generator] = None,
    ):
        if not 0 <= reorder_prob <= 1:
            raise ValueError(
                f"reorder_prob must be in [0, 1], got {reorder_prob}"
            )
        if detour_delay < 0:
            raise ValueError("detour_delay must be non-negative")
        self.sim = sim
        self.downstream = downstream
        self.reorder_prob = float(reorder_prob)
        self.detour_delay = float(detour_delay)
        self._rng = rng if rng is not None else np.random.default_rng(0)
        self.detoured_packets = 0

    def accept(self, packet: Packet) -> None:
        if self.reorder_prob > 0 and self._rng.random() < self.reorder_prob:
            self.detoured_packets += 1
            self.sim.schedule(
                self.detour_delay, self.downstream.accept, packet
            )
        else:
            self.downstream.accept(packet)


class Sink:
    """Terminal component: counts and optionally records what it swallows.

    Used as the destination for cross-traffic packets (which share the
    bottleneck with the flow under test but are not part of its trace) and
    as a generic test double.
    """

    def __init__(self, on_packet: Optional[Callable[[Packet], None]] = None):
        self.packets_received = 0
        self.bytes_received = 0
        self.received: List[Packet] = []
        self.keep_packets = False
        self._on_packet = on_packet

    def accept(self, packet: Packet) -> None:
        self.packets_received += 1
        self.bytes_received += packet.size
        if self.keep_packets:
            self.received.append(packet)
        if self._on_packet is not None:
            self._on_packet(packet)
