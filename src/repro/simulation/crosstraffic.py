"""Cross-traffic sources.

Ground-truth runs use live sources (Poisson, on/off bursts, or full
closed-loop Cubic flows); the iBoxNet emulator replays an *estimated*
cross-traffic rate time series through :class:`RateReplaySource` — the
non-adaptive replay the paper describes at the end of §3 ("The cross-traffic
so estimated is non-adaptive").
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.simulation.engine import Simulator
from repro.simulation.packet import DEFAULT_MTU_BYTES, Packet


class PoissonSource:
    """Poisson packet arrivals at a constant mean rate."""

    def __init__(
        self,
        sim: Simulator,
        downstream,
        rate_bytes_per_sec: float,
        seed: int,
        flow_id: str = "ct-poisson",
        packet_size: int = DEFAULT_MTU_BYTES,
        start: float = 0.0,
        stop: Optional[float] = None,
    ):
        if rate_bytes_per_sec < 0:
            raise ValueError("rate must be non-negative")
        self.sim = sim
        self.downstream = downstream
        self.rate = float(rate_bytes_per_sec)
        self.flow_id = flow_id
        self.packet_size = packet_size
        self.stop = stop
        self._rng = np.random.default_rng(seed)
        self._seq = 0
        self.packets_sent = 0
        if self.rate > 0:
            sim.schedule_at(max(start, sim.now), self._emit)

    def _next_gap(self) -> float:
        mean_gap = self.packet_size / self.rate
        return float(self._rng.exponential(mean_gap))

    def _emit(self) -> None:
        if self.stop is not None and self.sim.now >= self.stop:
            return
        packet = Packet(
            flow_id=self.flow_id, seq=self._seq, size=self.packet_size
        )
        packet.sent_at = self.sim.now
        self._seq += 1
        self.packets_sent += 1
        self.downstream.accept(packet)
        self.sim.schedule(self._next_gap(), self._emit)


class OnOffSource:
    """Bursty cross-traffic: alternates exponential ON/OFF periods.

    During ON periods it emits packets at ``peak_rate``; during OFF periods
    it is silent.  The long-run mean rate is
    ``peak_rate * mean_on / (mean_on + mean_off)``.
    """

    def __init__(
        self,
        sim: Simulator,
        downstream,
        peak_rate_bytes_per_sec: float,
        mean_on: float,
        mean_off: float,
        seed: int,
        flow_id: str = "ct-onoff",
        packet_size: int = DEFAULT_MTU_BYTES,
        start: float = 0.0,
        stop: Optional[float] = None,
    ):
        if peak_rate_bytes_per_sec <= 0:
            raise ValueError("peak rate must be positive")
        if mean_on <= 0 or mean_off < 0:
            raise ValueError("mean_on must be positive, mean_off >= 0")
        self.sim = sim
        self.downstream = downstream
        self.peak_rate = float(peak_rate_bytes_per_sec)
        self.mean_on = mean_on
        self.mean_off = mean_off
        self.flow_id = flow_id
        self.packet_size = packet_size
        self.stop = stop
        self._rng = np.random.default_rng(seed)
        self._seq = 0
        self._on_until = 0.0
        self.packets_sent = 0
        sim.schedule_at(max(start, sim.now), self._start_on_period)

    def _finished(self) -> bool:
        return self.stop is not None and self.sim.now >= self.stop

    def _start_on_period(self) -> None:
        if self._finished():
            return
        self._on_until = self.sim.now + float(
            self._rng.exponential(self.mean_on)
        )
        self._emit()

    def _emit(self) -> None:
        if self._finished():
            return
        if self.sim.now >= self._on_until:
            off = float(self._rng.exponential(self.mean_off))
            self.sim.schedule(off, self._start_on_period)
            return
        packet = Packet(
            flow_id=self.flow_id, seq=self._seq, size=self.packet_size
        )
        packet.sent_at = self.sim.now
        self._seq += 1
        self.packets_sent += 1
        self.downstream.accept(packet)
        self.sim.schedule(self.packet_size / self.peak_rate, self._emit)


class RateReplaySource:
    """Replays a rate time series as evenly spaced packets per bin.

    This is how the iBoxNet emulator injects the cross-traffic estimated
    from a trace: given bin edges and a per-bin rate (bytes/s), it emits
    ``rate * bin_width / packet_size`` packets spread uniformly across each
    bin.  Fractional packets carry over between bins so the replayed volume
    matches the estimate to within one packet overall.
    """

    def __init__(
        self,
        sim: Simulator,
        downstream,
        bin_edges: Sequence[float],
        rates_bytes_per_sec: Sequence[float],
        flow_id: str = "ct-replay",
        packet_size: int = DEFAULT_MTU_BYTES,
    ):
        edges = np.asarray(bin_edges, dtype=float)
        rates = np.asarray(rates_bytes_per_sec, dtype=float)
        if edges.ndim != 1 or len(edges) != len(rates) + 1:
            raise ValueError(
                "bin_edges must be 1-D with len(rates) + 1 entries"
            )
        if np.any(np.diff(edges) <= 0):
            raise ValueError("bin_edges must be strictly increasing")
        if np.any(rates < 0):
            raise ValueError("rates must be non-negative")
        self.sim = sim
        self.downstream = downstream
        self.flow_id = flow_id
        self.packet_size = packet_size
        self.packets_sent = 0
        self._seq = 0
        self._schedule_all(edges, rates)

    def _schedule_all(self, edges: np.ndarray, rates: np.ndarray) -> None:
        carry = 0.0
        for i, rate in enumerate(rates):
            t0, t1 = edges[i], edges[i + 1]
            width = t1 - t0
            fractional = rate * width / self.packet_size + carry
            count = int(fractional)
            carry = fractional - count
            if count <= 0:
                continue
            spacing = width / count
            for k in range(count):
                send_at = t0 + (k + 0.5) * spacing
                if send_at >= self.sim.now:
                    self.sim.schedule_at(send_at, self._emit)

    def _emit(self) -> None:
        packet = Packet(
            flow_id=self.flow_id, seq=self._seq, size=self.packet_size
        )
        packet.sent_at = self.sim.now
        self._seq += 1
        self.packets_sent += 1
        self.downstream.accept(packet)


class WindowedFlowSource:
    """Adapter that runs a closed-loop sender as cross traffic.

    Wraps any :class:`repro.protocols.base.Sender` so that full adaptive
    flows (e.g. the "one Cubic cross-traffic flow of 10 s duration" in the
    paper's instance test, §3.1.2) can compete at the bottleneck.  The
    construction is done by :mod:`repro.simulation.topology`; this class
    only carries the start/stop bookkeeping.
    """

    def __init__(self, sender, start: float, stop: Optional[float] = None):
        self.sender = sender
        self.start = start
        self.stop = stop

    def activate(self, sim: Simulator) -> None:
        """Schedule the wrapped sender's start (and optional stop)."""
        sim.schedule_at(max(self.start, sim.now), self.sender.start)
        if self.stop is not None:
            sim.schedule_at(self.stop, self.sender.shutdown)
